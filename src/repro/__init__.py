"""repro — Runtime Monitoring Neuron Activation Patterns (DATE 2019).

A from-scratch reproduction of Cheng, Nührenberg & Yasuoka's BDD-based
runtime monitor for neural-network activation patterns, including every
substrate it needs: a pure-numpy deep-learning framework (`repro.nn`), a
ROBDD engine (`repro.bdd`), synthetic stand-ins for MNIST / GTSRB / the
front-car case study (`repro.datasets`), the paper's architectures
(`repro.models`), the monitor itself (`repro.monitor`), statistical
baselines (`repro.baselines`) and the experiment harness
(`repro.analysis`).

Quickstart::

    from repro import (build_model, generate_mnist, NeuronActivationMonitor,
                       MonitoredClassifier)
    # see examples/quickstart.py for the full train->monitor->deploy loop
"""

__version__ = "1.0.0"

from repro.bdd import BDDManager
from repro.datasets import generate_frontcar, generate_gtsrb, generate_mnist
from repro.models import ModelSpec, available_models, build_model
from repro.monitor import (
    CalibrationResult,
    ComfortZone,
    DistributionShiftDetector,
    GammaCalibrator,
    MonitoredClassifier,
    MonitorEvaluation,
    NeuronActivationMonitor,
    Verdict,
    evaluate_monitor,
)

__all__ = [
    "__version__",
    "BDDManager",
    "generate_mnist",
    "generate_gtsrb",
    "generate_frontcar",
    "build_model",
    "available_models",
    "ModelSpec",
    "NeuronActivationMonitor",
    "ComfortZone",
    "GammaCalibrator",
    "CalibrationResult",
    "MonitoredClassifier",
    "Verdict",
    "MonitorEvaluation",
    "evaluate_monitor",
    "DistributionShiftDetector",
]
