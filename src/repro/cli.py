"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Version, registered models, cached artifacts.
``train``
    Train (or load) one of the standard systems; prints Table I-style
    accuracies.
``evaluate``
    Build a monitor at a fixed γ and print the Table II row for the
    validation set.
``sweep``
    Run the γ calibration sweep and report the chosen coarseness.

All heavy lifting is delegated to :mod:`repro.analysis`; the CLI is a thin,
scriptable veneer used by the examples and CI.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro import __version__
from repro.analysis import (
    DEFAULT_CACHE_DIR,
    STANDARD_CONFIGS,
    build_monitor,
    gamma_sweep,
    percent,
    render_table2,
    train_system,
)
from repro.models import available_models
from repro.monitor import available_backends
from repro.monitor.backends import DEFAULT_BACKEND


def _add_system_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system",
        choices=sorted(STANDARD_CONFIGS),
        required=True,
        help="which standard experiment system to use",
    )


def _add_monitor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--classes",
        type=int,
        nargs="*",
        default=None,
        help="restrict the monitor to these class indices (default: all)",
    )
    parser.add_argument(
        "--neuron-fraction",
        type=float,
        default=None,
        help="monitor only this fraction of neurons (gradient-selected)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(available_backends()),
        default=DEFAULT_BACKEND,
        help="comfort-zone engine: canonical BDD or vectorized bitset",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Runtime monitoring of neuron activation patterns (DATE 2019)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show version, models and cached artifacts")

    train_p = sub.add_parser("train", help="train or load a standard system")
    _add_system_argument(train_p)
    train_p.add_argument("--force", action="store_true", help="retrain even if cached")
    train_p.add_argument("--verbose", action="store_true", help="per-epoch progress")

    eval_p = sub.add_parser("evaluate", help="evaluate a monitor at one gamma")
    _add_system_argument(eval_p)
    _add_monitor_arguments(eval_p)
    eval_p.add_argument("--gamma", type=int, default=0, help="Hamming radius")

    sweep_p = sub.add_parser("sweep", help="gamma calibration sweep")
    _add_system_argument(sweep_p)
    _add_monitor_arguments(sweep_p)
    sweep_p.add_argument("--max-gamma", type=int, default=3)
    sweep_p.add_argument(
        "--max-warning-rate",
        type=float,
        default=0.05,
        help="silence target used to choose gamma",
    )
    return parser


def _cmd_info() -> int:
    print(f"repro {__version__}")
    print(f"registered models: {', '.join(available_models())}")
    print(f"standard systems:  {', '.join(sorted(STANDARD_CONFIGS))}")
    print(f"zone backends:     {', '.join(available_backends())}")
    cache = os.path.abspath(DEFAULT_CACHE_DIR)
    if os.path.isdir(cache):
        artifacts = sorted(f for f in os.listdir(cache) if f.endswith(".npz"))
        print(f"cached artifacts ({cache}):")
        for name in artifacts or ["  (none)"]:
            print(f"  {name}")
    else:
        print("no artifact cache yet")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    system = train_system(
        STANDARD_CONFIGS[args.system], force=args.force, verbose=args.verbose
    )
    print(f"system:         {args.system}")
    print(f"train accuracy: {percent(system.train_accuracy)}")
    print(f"val accuracy:   {percent(system.val_accuracy)}")
    print(f"monitored layer width: {system.spec.monitored_width}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    system = train_system(STANDARD_CONFIGS[args.system])
    monitor = build_monitor(
        system,
        gamma=args.gamma,
        classes=args.classes,
        neuron_fraction=args.neuron_fraction,
        backend=args.backend,
    )
    rows = gamma_sweep(system, monitor, [args.gamma])
    print(render_table2(1, system.misclassification_rate, rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    system = train_system(STANDARD_CONFIGS[args.system])
    monitor = build_monitor(
        system, gamma=0, classes=args.classes,
        neuron_fraction=args.neuron_fraction, backend=args.backend,
    )
    rows = gamma_sweep(system, monitor, list(range(args.max_gamma + 1)))
    print(render_table2(1, system.misclassification_rate, rows))
    acceptable = [r for r in rows if r.out_of_pattern_rate <= args.max_warning_rate]
    chosen = min((r.gamma for r in acceptable), default=rows[-1].gamma)
    print(f"\nchosen gamma: {chosen} "
          f"(silence target {percent(args.max_warning_rate)})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
