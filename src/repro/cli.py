"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Version, registered models, cached artifacts.
``train``
    Train (or load) one of the standard systems; prints Table I-style
    accuracies.
``evaluate``
    Build a monitor at a fixed γ and print the Table II row for the
    validation set.
``sweep``
    Run the γ calibration sweep and report the chosen coarseness (the
    choice is made by :class:`~repro.monitor.calibration.GammaCalibrator`,
    so CLI and library always agree).
``serve`` (alias ``stream``)
    Shard the monitor per class and replay the validation stream through
    the asyncio micro-batching :class:`~repro.serving.server.StreamServer`;
    prints sustained throughput, per-shard queue/batch/latency statistics
    and the inline distribution-shift verdict.  ``--workers N`` moves
    execution to N shared-nothing worker *processes*
    (:class:`~repro.serving.procpool.ProcessShardPool`) and adds a
    per-worker statistics table, e.g.::

        python -m repro serve --system mnist --workers 4
        python -m repro stream --system gtsrb --workers 2 --distances

    ``--cluster HOST:PORT`` serves from a cross-host TCP shard cluster
    instead (:class:`~repro.serving.cluster.ClusterCoordinator`): the
    coordinator listens there and waits for ``--workers`` external
    ``serve-worker`` registrations.
``serve-worker``
    One TCP cluster worker: dials a coordinator's listen address,
    registers, rehydrates its assigned shards from the portable payloads
    and answers packed-bit block requests until told to stop, e.g.::

        python -m repro serve-worker 10.0.0.5:7410 --name replica-a

``store``
    Inspect or maintain a crash-consistent on-disk zone store
    (:mod:`repro.store`): ``info`` prints the recovered cursor state,
    ``verify`` re-validates every checksum from disk (exit 1 on any
    corruption), ``compact`` folds the WAL tail into a fresh
    checksummed segment, e.g.::

        python -m repro store info runs/mnist-zones
        python -m repro store verify runs/mnist-zones
        python -m repro store compact runs/mnist-zones

    ``serve --store DIR`` plugs the same directory into the serving
    path: an empty directory is initialized from the built monitor, a
    populated one rehydrates the monitor by mapping its newest segment
    and replaying the WAL tail — including everything a ``--drift-respond``
    run absorbed before it stopped (or crashed).

All heavy lifting is delegated to :mod:`repro.analysis`; the CLI is a thin,
scriptable veneer used by the examples and CI.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

import numpy as np

from repro import __version__
from repro.analysis import (
    DEFAULT_CACHE_DIR,
    STANDARD_CONFIGS,
    build_monitor,
    format_table,
    gamma_sweep,
    percent,
    render_table2,
    train_system,
)
from repro.models import available_models
from repro.monitor import (
    DistanceShiftDetector,
    DistributionShiftDetector,
    GammaCalibrator,
    available_backends,
)
from repro.monitor.backends import DEFAULT_BACKEND


def _add_system_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system",
        choices=sorted(STANDARD_CONFIGS),
        required=True,
        help="which standard experiment system to use",
    )


def _add_monitor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--classes",
        type=int,
        nargs="*",
        default=None,
        help="restrict the monitor to these class indices (default: all)",
    )
    parser.add_argument(
        "--neuron-fraction",
        type=float,
        default=None,
        help="monitor only this fraction of neurons (gradient-selected)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(available_backends()),
        default=DEFAULT_BACKEND,
        help="comfort-zone engine: canonical BDD or vectorized bitset",
    )
    parser.add_argument(
        "--indexed",
        action="store_true",
        help="arm the bitset engine's multi-index Hamming pruner "
        "(sub-linear queries over large zones; bitset backend only)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Runtime monitoring of neuron activation patterns (DATE 2019)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show version, models and cached artifacts")

    train_p = sub.add_parser("train", help="train or load a standard system")
    _add_system_argument(train_p)
    train_p.add_argument("--force", action="store_true", help="retrain even if cached")
    train_p.add_argument("--verbose", action="store_true", help="per-epoch progress")

    eval_p = sub.add_parser("evaluate", help="evaluate a monitor at one gamma")
    _add_system_argument(eval_p)
    _add_monitor_arguments(eval_p)
    eval_p.add_argument("--gamma", type=int, default=0, help="Hamming radius")

    sweep_p = sub.add_parser("sweep", help="gamma calibration sweep")
    _add_system_argument(sweep_p)
    _add_monitor_arguments(sweep_p)
    sweep_p.add_argument("--max-gamma", type=int, default=3)
    sweep_p.add_argument(
        "--max-warning-rate",
        type=float,
        default=0.05,
        help="silence target used to choose gamma",
    )
    sweep_p.add_argument(
        "--min-precision",
        type=float,
        default=0.0,
        help="floor on misclassified-within-oop; noisier gammas are skipped",
    )

    lint_p = sub.add_parser(
        "lint",
        help="run the invariant-enforcing static-analysis pass",
    )
    lint_p.add_argument(
        "paths", nargs="*", default=["src"], help="files/dirs to lint"
    )
    lint_p.add_argument("--format", choices=("human", "json"), default="human")
    lint_p.add_argument("--rules", default=None, help="comma-separated subset")
    lint_p.add_argument("--list-rules", action="store_true")
    lint_p.add_argument("--show-suppressed", action="store_true")

    serve_p = sub.add_parser(
        "serve",
        aliases=["stream"],
        help="replay the validation stream through the sharded async server",
    )
    _add_system_argument(serve_p)
    _add_monitor_arguments(serve_p)
    # Serving is the bitset engine's home turf (vectorized batch queries
    # and cheap exact distances); BDD remains selectable via --backend.
    serve_p.set_defaults(backend="bitset")
    serve_p.add_argument("--gamma", type=int, default=2, help="Hamming radius")
    serve_p.add_argument(
        "--shards", type=int, default=4, help="number of per-class monitor shards"
    )
    serve_p.add_argument(
        "--max-batch", type=int, default=64,
        help="largest micro-batch coalesced into one backend call",
    )
    serve_p.add_argument(
        "--max-delay-ms", type=float, default=2.0,
        help="longest wait for stragglers before a batch is flushed",
    )
    serve_p.add_argument(
        "--max-pending", type=int, default=1024,
        help="per-shard queue bound (producers block beyond it)",
    )
    serve_p.add_argument(
        "--requests", type=int, default=None,
        help="stream length (validation rows are recycled; default: one epoch)",
    )
    serve_p.add_argument(
        "--distances", action="store_true",
        help="also stream exact Hamming distances into the histogram "
        "shift detector (sharper signal than binary verdicts)",
    )
    serve_p.add_argument(
        "--submit", choices=["bulk", "per_request"], default="bulk",
        help="producer shape: one vectorised check_many call (bulk) or "
        "one concurrent check call per row (per_request) — throughputs "
        "are not comparable across modes",
    )
    serve_p.add_argument(
        "--workers", type=int, default=0,
        help="serve from N shared-nothing worker processes (each "
        "rehydrates its shard subset from the portable visited-pattern "
        "payloads; crashed workers respawn with in-flight blocks "
        "requeued); 0 = in-process thread-pool execution",
    )
    serve_p.add_argument(
        "--cluster", metavar="HOST:PORT", default=None,
        help="serve from a TCP shard cluster instead of local processes: "
        "bind the coordinator's listen socket there and wait for "
        "--workers external 'repro serve-worker HOST:PORT' processes to "
        "register (use 0 as the port for an ephemeral bind); dropped "
        "workers reconnect or have their shards re-placed on survivors",
    )
    serve_p.add_argument(
        "--store", metavar="DIR", default=None,
        help="durable zone store directory: an empty DIR is initialized "
        "from the built monitor and every fresh pattern/gamma/snapshot "
        "is write-through logged; a populated DIR rehydrates the "
        "monitor from its newest segment + WAL tail (crash-consistent "
        "cold start), overriding the cached zone contents",
    )
    serve_p.add_argument(
        "--drift-respond", action="store_true",
        help="close the drift loop: stage flagged out-of-zone patterns, "
        "absorb them on alarm, re-choose gamma on the retained "
        "validation sweep and hot-swap the new zone snapshot "
        "fleet-atomically (bumps the zone epoch)",
    )
    serve_p.add_argument(
        "--drift-min-staged", type=int, default=64,
        help="minimum staged patterns before an alarm triggers a "
        "zone absorption (thin evidence keeps accumulating)",
    )
    serve_p.add_argument(
        "--alarm-z", type=float, default=3.0,
        help="z-score threshold of the windowed out-of-pattern rate "
        "alarm (lower it to force the drift loop on quiet streams)",
    )

    worker_p = sub.add_parser(
        "serve-worker",
        help="run one TCP cluster worker: dial a coordinator, register, "
        "rehydrate the assigned shards and answer block requests",
    )
    worker_p.add_argument(
        "address", metavar="HOST:PORT",
        help="coordinator listen address (the serve side's --cluster)",
    )
    worker_p.add_argument(
        "--name", default=None,
        help="stable worker name (default: hostname-pid); re-registering "
        "under the same name after a disconnect reclaims the previous "
        "shard placement",
    )
    worker_p.add_argument(
        "--reconnect-attempts", type=int, default=10,
        help="redials after a lost (or not-yet-listening) coordinator "
        "before giving up",
    )
    worker_p.add_argument(
        "--reconnect-backoff", type=float, default=0.5,
        help="seconds between redials",
    )

    store_p = sub.add_parser(
        "store",
        help="inspect or maintain a crash-consistent on-disk zone store",
    )
    store_p.add_argument(
        "action", choices=("info", "verify", "compact"),
        help="info: recovered cursor summary; verify: re-validate every "
        "checksum from disk (exit 1 on corruption); compact: fold the "
        "WAL tail into a fresh checksummed segment",
    )
    store_p.add_argument(
        "directory", metavar="DIR", help="zone store directory",
    )
    store_p.add_argument(
        "--keep-segments", type=int, default=1,
        help="previous segment generations kept as fallbacks by compact",
    )
    store_p.add_argument(
        "--json", action="store_true",
        help="emit the raw report as JSON instead of the human summary",
    )
    return parser


def _print_engine_stats(monitor) -> None:
    """One line of BDD engine observability for evaluate/sweep/serve.

    Surfaces the complement-edge engine's health counters (extended
    ``BDDManager.cache_stats()``): live vs physical nodes, unique-table
    load, GC collections and reclaimed nodes, sifting reorders, and the
    ite/exists cache hit rates.  Prints nothing for non-BDD backends.
    """
    stats = monitor.engine_stats()
    if not stats:
        return
    print(
        f"bdd engine: {stats['live_nodes']} live nodes "
        f"({stats['nodes']} allocated, {stats['unique_entries']} unique-table "
        f"entries), gc: {stats['gc_runs']} collections / "
        f"{stats['gc_reclaimed_nodes']} nodes reclaimed "
        f"(threshold {stats['gc_threshold'] or 'off'}), "
        f"reorders: {stats['reorder_count']} ({stats['reorder_swaps']} swaps), "
        f"cache hits: ite {percent(stats['ite_hit_rate'])} / "
        f"exists {percent(stats['exists_hit_rate'])}"
    )


def _cmd_info() -> int:
    print(f"repro {__version__}")
    print(f"registered models: {', '.join(available_models())}")
    print(f"standard systems:  {', '.join(sorted(STANDARD_CONFIGS))}")
    print(f"zone backends:     {', '.join(available_backends())}")
    cache = os.path.abspath(DEFAULT_CACHE_DIR)
    if os.path.isdir(cache):
        artifacts = sorted(f for f in os.listdir(cache) if f.endswith(".npz"))
        print(f"cached artifacts ({cache}):")
        for name in artifacts or ["  (none)"]:
            print(f"  {name}")
    else:
        print("no artifact cache yet")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    system = train_system(
        STANDARD_CONFIGS[args.system], force=args.force, verbose=args.verbose
    )
    print(f"system:         {args.system}")
    print(f"train accuracy: {percent(system.train_accuracy)}")
    print(f"val accuracy:   {percent(system.val_accuracy)}")
    print(f"monitored layer width: {system.spec.monitored_width}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    system = train_system(STANDARD_CONFIGS[args.system])
    monitor = build_monitor(
        system,
        gamma=args.gamma,
        classes=args.classes,
        neuron_fraction=args.neuron_fraction,
        backend=args.backend,
        indexed=args.indexed,
    )
    rows = gamma_sweep(system, monitor, [args.gamma])
    print(render_table2(1, system.misclassification_rate, rows))
    _print_engine_stats(monitor)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    system = train_system(STANDARD_CONFIGS[args.system])
    monitor = build_monitor(
        system, gamma=0, classes=args.classes,
        neuron_fraction=args.neuron_fraction, backend=args.backend,
        indexed=args.indexed,
    )
    rows = gamma_sweep(system, monitor, list(range(args.max_gamma + 1)))
    print(render_table2(1, system.misclassification_rate, rows))
    # One selection rule for library and CLI: GammaCalibrator applies the
    # min_precision floor and the documented quietest-gamma fallback.
    calibrator = GammaCalibrator(
        max_gamma=args.max_gamma,
        max_out_of_pattern_rate=args.max_warning_rate,
        min_precision=args.min_precision,
    )
    chosen = calibrator.choose(rows)
    print(f"\nchosen gamma: {chosen} "
          f"(silence target {percent(args.max_warning_rate)}, "
          f"precision floor {percent(args.min_precision)})")
    _print_engine_stats(monitor)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import ShardRouter, run_stream

    system = train_system(STANDARD_CONFIGS[args.system])
    monitor = build_monitor(
        system,
        gamma=args.gamma,
        classes=args.classes,
        neuron_fraction=args.neuron_fraction,
        backend=args.backend,
        indexed=args.indexed,
    )
    store = None
    if args.store is not None:
        from repro.monitor.monitor import NeuronActivationMonitor
        from repro.store import ZoneStore

        os.makedirs(args.store, exist_ok=True)
        store = ZoneStore.open(args.store)
        if store.initialized:
            # The store is the ground truth: map the newest segment and
            # replay the WAL tail — the zones of the previous run (drift
            # absorptions included) replace the freshly built ones.
            monitor = NeuronActivationMonitor.from_store(
                store, backend=args.backend
            )
            print(f"store: rehydrated {args.store} "
                  f"(epoch {store.epoch}, gamma {monitor.gamma}, "
                  f"{sum(z.num_visited_patterns for z in monitor.zones.values())} "
                  f"visited patterns)")
        else:
            monitor.attach_store(store)
            print(f"store: initialized {args.store} from the built monitor")
    router = ShardRouter.partition(monitor, args.shards)
    patterns, labels, predictions = system.patterns_of("val")
    total = args.requests if args.requests is not None else len(patterns)
    if total <= 0 or len(patterns) == 0:
        raise SystemExit("nothing to serve: empty validation stream")
    picks = np.arange(total) % len(patterns)
    stream_patterns = patterns[picks]
    stream_classes = predictions[picks]

    # Calibration-time baselines for the inline shift detectors.
    baseline_oop = 1.0 - monitor.check(patterns, predictions).mean()
    shift_detector = DistributionShiftDetector(
        min(baseline_oop, 0.99), z_threshold=args.alarm_z
    )
    distance_detector = None
    if args.distances:
        distance_detector = DistanceShiftDetector(
            monitor.min_distances(patterns, predictions)
        )
    drift_responder = None
    if args.drift_respond:
        from repro.monitor.drift import DriftResponder

        # The responder keeps the validation sweep set: γ is re-chosen on
        # it after every absorption, detector baselines re-measured on it.
        drift_responder = DriftResponder(
            monitor,
            patterns,
            predictions,
            labels,
            min_staged=args.drift_min_staged,
            store=store,
        )

    if args.workers < 0:
        raise SystemExit(f"--workers must be non-negative, got {args.workers}")
    # --workers 0 leaves the executor choice to the server defaults (and
    # the REPRO_SERVING_EXECUTOR override) rather than forcing a mode or
    # pinning the pool to one worker.  --cluster overrides both: the
    # coordinator binds there and waits for --workers (default 2)
    # external serve-worker registrations.
    if args.cluster is not None:
        fleet = args.workers or 2
        executor_kwargs = {
            "executor": "cluster",
            "workers": fleet,
            "cluster_address": args.cluster,
        }
        print(
            f"cluster: listening on {args.cluster}, waiting for {fleet} "
            f"worker registration{'s' if fleet > 1 else ''} — run "
            f"`python -m repro serve-worker {args.cluster}` on each host",
            flush=True,
        )
    else:
        executor_kwargs = (
            {"executor": "process", "workers": args.workers}
            if args.workers else {}
        )
    result = run_stream(
        router,
        stream_patterns,
        stream_classes,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        max_pending=args.max_pending,
        shift_detector=shift_detector,
        distance_detector=distance_detector,
        drift_responder=drift_responder,
        submit=args.submit,
        **executor_kwargs,
    )
    # Label what actually served the stream: a non-empty worker table
    # means a worker fleet ran, whatever selected it (flag or env); the
    # transport tag tells a TCP cluster from a local process pool.
    if result.worker_stats:
        fleet = len(result.worker_stats)
        if any(row.get("transport") == "tcp" for row in result.worker_stats):
            executor_label = f"cluster({fleet})"
        else:
            executor_label = f"process({fleet})"
    else:
        executor_label = "in-process"
    print(f"system:   {args.system}  backend={args.backend}  gamma={args.gamma}  "
          f"submit={args.submit}  executor={executor_label}")
    print(f"shards:   {len(router)}  "
          f"(classes per shard: {[len(s.classes) for s in router.shards]})  "
          f"zone epoch={router.epoch}")
    print(f"requests: {len(result.verdicts)}  elapsed {result.elapsed*1e3:.1f}ms  "
          f"throughput {result.throughput/1e3:.1f}k req/s")
    print(f"warnings: {int((~result.verdicts).sum())} "
          f"(baseline oop rate {percent(baseline_oop)})")
    keys = ["shard", "requests", "batches", "mean_batch", "max_batch",
            "max_queue_depth", "p50_ms", "p99_ms"]
    table_rows = [
        [f"{row[k]:.2f}" if isinstance(row[k], float) else str(row[k]) for k in keys]
        for row in result.stats
    ]
    print(format_table(keys, table_rows))
    if result.worker_stats:
        worker_keys = ["worker", "pid", "requests", "batches", "mean_batch",
                       "respawns", "requeued_blocks", "p50_ms", "p99_ms"]
        worker_rows = [
            [f"{row[k]:.2f}" if isinstance(row[k], float) else str(row[k])
             for k in worker_keys]
            for row in result.worker_stats
        ]
        print("worker processes:")
        print(format_table(worker_keys, worker_rows))
    shift_state = shift_detector.peek()
    print(f"shift detector: window rate {percent(shift_state.window_rate)}, "
          f"z={shift_state.z_score:.2f}, cusum={shift_state.cusum:.2f}, "
          f"alarm={shift_state.alarm}")
    if distance_detector is not None:
        state = distance_detector.peek()
        print(f"distance histogram: mean {state.window_mean:.2f}, "
              f"divergence {state.divergence:.3f}, alarm={state.alarm}")
    if result.drift is not None:
        drift = result.drift
        line = (f"drift loop: epoch {drift['epoch']}, swaps {drift['swaps']}, "
                f"gamma {drift.get('gamma', args.gamma)}, "
                f"absorbed {drift.get('absorbed_patterns', 0)} "
                f"(staged {drift.get('staged', 0)} pending)")
        if "swap_error" in drift:
            line += f"  [swap error: {drift['swap_error']}]"
        print(line)
    # The shards serve from their own rehydrated engines; this reports
    # the build-time monitor the stream was partitioned from.
    _print_engine_stats(monitor)
    if store is not None:
        print(f"store: epoch {store.epoch}, wal offset {store.wal_offset}, "
              f"segment seq {store.segment_seq}")
        store.flush(sync=True)
        store.close()
    return 0


def _cmd_serve_worker(args: argparse.Namespace) -> int:
    from repro.serving.cluster import run_worker

    # Blocks until the coordinator sends the stop sentinel (exit 0) or
    # the connection is lost with the redial budget exhausted.
    run_worker(
        args.address,
        name=args.name,
        reconnect_attempts=args.reconnect_attempts,
        reconnect_backoff=args.reconnect_backoff,
    )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from repro.store import StoreError, ZoneStore

    if not os.path.isdir(args.directory):
        raise SystemExit(f"store directory does not exist: {args.directory}")
    store = ZoneStore.open(args.directory)
    try:
        if args.action == "info":
            info = store.info()
            if args.json:
                print(json.dumps(info, indent=2, sort_keys=True))
                return 0
            print(f"store:      {info['directory']}")
            print(f"initialized: {info['initialized']}  "
                  f"epoch={info['epoch']}  gamma={info['gamma']}  "
                  f"fsync={info['fsync']}")
            print(f"segment:    seq={info['segment_seq']}  "
                  f"rows={info.get('segment_rows', {})}")
            print(f"wal:        offset={info['wal_offset']}  "
                  f"tail_bytes={info['wal_tail_bytes']}  "
                  f"tail_rows={info.get('wal_tail_rows', {})}")
            if info["recovery_events"]:
                print("recovery events:")
                for event in info["recovery_events"]:
                    print(f"  - {event}")
            return 0
        if args.action == "verify":
            report = store.verify()
            if args.json:
                print(json.dumps(report, indent=2, sort_keys=True))
            else:
                for entry in report["segments"]:
                    status = "ok" if entry.get("valid") else (
                        f"CORRUPT ({entry.get('error') or entry.get('corrupt_classes')})"
                    )
                    print(f"segment {entry['path']}: {status}")
                wal = report["wal"]
                tail = (
                    "clean" if not wal["torn_bytes"]
                    else f"{wal['torn_bytes']} torn byte(s): {wal['reason']}"
                )
                print(f"wal {wal['path']}: {wal['records']} records, {tail}")
                if report.get("quarantined"):
                    print(f"quarantined: {', '.join(report['quarantined'])}")
                if "snapshot_counts_match" in report:
                    print("snapshot marker counts: "
                          + ("match" if report["snapshot_counts_match"]
                             else f"MISMATCH {report['snapshot_count_mismatches']}"))
                print(f"verify: {'OK' if report['ok'] else 'FAILED'}")
            return 0 if report["ok"] else 1
        # compact
        try:
            path = store.compact(keep_segments=args.keep_segments)
        except StoreError as exc:
            raise SystemExit(str(exc))
        print(f"compacted into {os.path.basename(path)}  "
              f"(epoch={store.epoch}, gamma={store.gamma}, "
              f"wal_offset={store.wal_offset})")
        return 0
    finally:
        store.close()


def _cmd_lint(args) -> int:
    # Delegate to the devtools front end (same flags), so `repro lint`
    # and `python -m repro.devtools.lint` stay one implementation.
    from repro.devtools.lint.cli import main as lint_main

    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.rules:
        argv += ["--rules", args.rules]
    if args.list_rules:
        argv.append("--list-rules")
    if args.show_suppressed:
        argv.append("--show-suppressed")
    return lint_main(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Reject the combination up front: discovering it after minutes of
    # system training would surface as a raw backend ValueError.
    if getattr(args, "indexed", False) and getattr(args, "backend", None) != "bitset":
        parser.error("--indexed requires --backend bitset")
    if args.command == "info":
        return _cmd_info()
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command in ("serve", "stream"):
        return _cmd_serve(args)
    if args.command == "serve-worker":
        return _cmd_serve_worker(args)
    if args.command == "store":
        return _cmd_store(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
