"""Choosing γ — "infer when to stop enlarging" (paper §I and §III).

The paper's recipe: take a validation set with ground-truth labels
(expected to match the operation-time distribution), gradually increase the
Hamming distance, and stop when the abstraction is coarse enough that
out-of-pattern events remain informative: the monitor should be *largely
silent* (small out-of-pattern rate) while out-of-pattern occurrences retain
a substantial misclassification share.

:class:`GammaCalibrator` sweeps γ upward, records a
:class:`~repro.monitor.metrics.MonitorEvaluation` per step (this sweep *is*
the data behind Table II), and picks the smallest γ meeting the target
silence, preferring larger warning precision on ties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.monitor.metrics import MonitorEvaluation, evaluate_patterns
from repro.monitor.monitor import NeuronActivationMonitor
from repro.monitor.patterns import extract_patterns
from repro.nn.data import Dataset, stack_dataset
from repro.nn.layers import Module


@dataclass
class CalibrationResult:
    """Outcome of a γ sweep."""

    chosen_gamma: int
    sweep: List[MonitorEvaluation] = field(default_factory=list)

    @property
    def chosen(self) -> MonitorEvaluation:
        """The evaluation row of the chosen γ."""
        for row in self.sweep:
            if row.gamma == self.chosen_gamma:
                return row
        raise LookupError(f"no sweep row for gamma={self.chosen_gamma}")

    def as_dict(self) -> dict:
        """Plain-data summary (drift-loop stats lines, snapshot logging)."""
        row = self.chosen
        return {
            "chosen_gamma": self.chosen_gamma,
            "out_of_pattern_rate": row.out_of_pattern_rate,
            "misclassified_within_oop": row.misclassified_within_oop,
            "sweep_gammas": [r.gamma for r in self.sweep],
        }


@dataclass
class GammaCalibrator:
    """Sweep γ on validation data and select the coarseness.

    Parameters
    ----------
    max_gamma:
        Upper bound of the sweep (inclusive).
    max_out_of_pattern_rate:
        Target silence: the smallest γ whose out-of-pattern rate is at or
        below this bound is chosen.  The paper's MNIST discussion lands at
        0.6% (γ=2) and GTSRB at 4.58% (γ=3); the default 5% reproduces both
        choices.
    min_precision:
        Optional floor on misclassified-within-out-of-pattern; γ values
        whose warnings are mostly false alarms are skipped even if silent
        enough.
    """

    max_gamma: int = 4
    max_out_of_pattern_rate: float = 0.05
    min_precision: float = 0.0

    def calibrate_patterns(
        self,
        monitor: NeuronActivationMonitor,
        patterns: np.ndarray,
        predictions: np.ndarray,
        labels: np.ndarray,
    ) -> CalibrationResult:
        """Sweep γ over pre-extracted validation patterns.

        The monitor's γ is left at the chosen value on return.
        """
        if self.max_gamma < 0:
            raise ValueError(f"max_gamma must be non-negative, got {self.max_gamma}")
        sweep: List[MonitorEvaluation] = []
        for gamma in range(self.max_gamma + 1):
            monitor.set_gamma(gamma)
            sweep.append(evaluate_patterns(monitor, patterns, predictions, labels))

        chosen = self.choose(sweep)
        monitor.set_gamma(chosen)
        return CalibrationResult(chosen_gamma=chosen, sweep=sweep)

    def calibrate(
        self,
        monitor: NeuronActivationMonitor,
        model: Module,
        monitored_module: Module,
        val_dataset: Dataset,
        batch_size: int = 256,
    ) -> CalibrationResult:
        """End-to-end sweep: extract validation patterns, then calibrate."""
        inputs, labels = stack_dataset(val_dataset)
        patterns, logits = extract_patterns(model, monitored_module, inputs, batch_size)
        return self.calibrate_patterns(monitor, patterns, logits.argmax(axis=1), labels)

    def choose(self, sweep: List[MonitorEvaluation]) -> int:
        """Select γ from evaluated sweep rows — the single source of truth
        for the selection rule (the CLI ``sweep`` command routes through
        this too, so library and CLI cannot drift apart)."""
        acceptable = [
            row
            for row in sweep
            if row.out_of_pattern_rate <= self.max_out_of_pattern_rate
            and row.misclassified_within_oop >= self.min_precision
        ]
        if acceptable:
            # Smallest acceptable gamma: least coarsening that meets targets.
            return min(row.gamma for row in acceptable)
        # Nothing meets the silence target: fall back to the quietest sweep
        # point (largest gamma), which the enlargement monotonicity makes
        # the best-effort choice.
        return sweep[-1].gamma

    # Backwards-compatible alias (pre-serving-layer name).
    _choose = choose
