"""Evaluation metrics for monitors — the columns of the paper's Table II.

For a dataset with ground-truth labels, each example is classified by the
network and checked against the monitor, yielding four populations
(in/out of pattern x correctly/incorrectly classified).  From the counts we
derive exactly what Table II reports:

* ``out_of_pattern_rate``   = #out-of-pattern images / #total images
* ``misclassified_within_oop`` = #out-of-pattern misclassified / #out-of-pattern
* ``misclassification_rate``   = #misclassified / #total

plus standard detection quality measures (recall of misclassifications,
false-positive rate on correct decisions) used by the baseline comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.monitor.monitor import NeuronActivationMonitor
from repro.monitor.patterns import extract_patterns
from repro.nn.data import Dataset, stack_dataset
from repro.nn.layers import Module


@dataclass
class MonitorEvaluation:
    """Confusion counts between the monitor's warnings and correctness.

    All counts refer to the *evaluated* examples (restricted to monitored
    classes when the monitor covers a subset, as in the GTSRB stop-sign
    experiment).
    """

    gamma: int
    total: int
    misclassified: int
    out_of_pattern: int
    out_of_pattern_misclassified: int

    @property
    def misclassification_rate(self) -> float:
        """Fraction of evaluated images the network got wrong."""
        return self.misclassified / self.total if self.total else 0.0

    @property
    def out_of_pattern_rate(self) -> float:
        """Table II column: #out-of-pattern images / #total images."""
        return self.out_of_pattern / self.total if self.total else 0.0

    @property
    def misclassified_within_oop(self) -> float:
        """Table II column: #out-of-pattern misclassified / #out-of-pattern."""
        if self.out_of_pattern == 0:
            return 0.0
        return self.out_of_pattern_misclassified / self.out_of_pattern

    @property
    def warning_precision(self) -> float:
        """Alias of :attr:`misclassified_within_oop` (precision of warnings)."""
        return self.misclassified_within_oop

    @property
    def warning_recall(self) -> float:
        """Fraction of misclassifications flagged as out-of-pattern."""
        if self.misclassified == 0:
            return 0.0
        return self.out_of_pattern_misclassified / self.misclassified

    @property
    def false_positive_rate(self) -> float:
        """Fraction of *correct* decisions that still triggered a warning."""
        correct = self.total - self.misclassified
        if correct == 0:
            return 0.0
        return (self.out_of_pattern - self.out_of_pattern_misclassified) / correct

    @property
    def silence_rate(self) -> float:
        """Fraction of time the monitor stays silent (1 - warning rate)."""
        return 1.0 - self.out_of_pattern_rate

    def as_dict(self) -> Dict[str, float]:
        """All metrics as a flat dict (for table formatting)."""
        return {
            "gamma": self.gamma,
            "total": self.total,
            "misclassification_rate": self.misclassification_rate,
            "out_of_pattern_rate": self.out_of_pattern_rate,
            "misclassified_within_oop": self.misclassified_within_oop,
            "warning_recall": self.warning_recall,
            "false_positive_rate": self.false_positive_rate,
        }


def evaluate_patterns(
    monitor: NeuronActivationMonitor,
    patterns: np.ndarray,
    predictions: np.ndarray,
    labels: np.ndarray,
    restrict_to_monitored: bool = True,
) -> MonitorEvaluation:
    """Score pre-extracted patterns against a monitor.

    When the monitor covers a class subset and ``restrict_to_monitored`` is
    set (the paper's protocol for the stop-sign experiment), only examples
    *predicted* as a monitored class are evaluated — those are the decisions
    the monitor supervises at runtime.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if restrict_to_monitored:
        mask = np.isin(predictions, monitor.classes)
    else:
        mask = np.ones(len(predictions), dtype=bool)
    patterns = patterns[mask]
    predictions = predictions[mask]
    labels = labels[mask]
    if len(patterns) == 0:
        return MonitorEvaluation(monitor.gamma, 0, 0, 0, 0)
    supported = monitor.check(patterns, predictions)
    misclassified = predictions != labels
    return MonitorEvaluation(
        gamma=monitor.gamma,
        total=int(len(patterns)),
        misclassified=int(misclassified.sum()),
        out_of_pattern=int((~supported).sum()),
        out_of_pattern_misclassified=int((~supported & misclassified).sum()),
    )


def evaluate_monitor(
    monitor: NeuronActivationMonitor,
    model: Module,
    monitored_module: Module,
    dataset: Dataset,
    batch_size: int = 256,
    restrict_to_monitored: bool = True,
) -> MonitorEvaluation:
    """End-to-end evaluation: forward pass, pattern check, Table II counts."""
    inputs, labels = stack_dataset(dataset)
    patterns, logits = extract_patterns(model, monitored_module, inputs, batch_size)
    predictions = logits.argmax(axis=1)
    return evaluate_patterns(
        monitor, patterns, predictions, labels, restrict_to_monitored
    )
