"""Box (interval) abstraction over activation values — the paper's §V
"more refined domains" extension, in the spirit of difference-bound
matrices but restricted to per-neuron bounds.

Where the BDD monitor abstracts each neuron to one bit (on/off), a
:class:`BoxZone` keeps the interval ``[min, max]`` of each monitored
neuron's *real-valued* activation seen on correctly-classified training
data, optionally widened by a margin in units of the neuron's standard
deviation (the analogue of γ).  Membership means every coordinate lies in
its widened interval.  The fig2 sweep bench compares both abstractions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.nn.data import Dataset, stack_dataset
from repro.nn.hooks import ActivationTap
from repro.nn.layers import Module
from repro.nn.tensor import Tensor


class BoxZone:
    """Per-neuron interval hull of visited activations for one class."""

    def __init__(self, num_neurons: int, margin: float = 0.0):
        if num_neurons <= 0:
            raise ValueError(f"num_neurons must be positive, got {num_neurons}")
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.num_neurons = num_neurons
        self.margin = margin
        self._low: Optional[np.ndarray] = None
        self._high: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._count = 0

    def fit(self, activations: np.ndarray) -> "BoxZone":
        """Compute the hull (and widths) from visited activations."""
        activations = np.atleast_2d(activations)
        if activations.shape[1] != self.num_neurons:
            raise ValueError(
                f"activations have width {activations.shape[1]}, expected {self.num_neurons}"
            )
        if len(activations) == 0:
            raise ValueError("cannot fit a box zone on zero activations")
        self._low = activations.min(axis=0)
        self._high = activations.max(axis=0)
        self._std = activations.std(axis=0)
        self._count = len(activations)
        return self

    def is_empty(self) -> bool:
        """True before :meth:`fit` was called."""
        return self._low is None

    def contains_batch(self, activations: np.ndarray) -> np.ndarray:
        """Vectorised membership with the margin-widened hull."""
        if self.is_empty():
            return np.zeros(len(np.atleast_2d(activations)), dtype=bool)
        activations = np.atleast_2d(activations)
        slack = self.margin * self._std
        above = activations >= (self._low - slack)
        below = activations <= (self._high + slack)
        return (above & below).all(axis=1)

    def contains(self, activation: np.ndarray) -> bool:
        """Membership for one activation vector."""
        return bool(self.contains_batch(activation[None])[0])


class BoxMonitor:
    """Per-class box zones; same protocol as the BDD activation monitor."""

    def __init__(
        self,
        layer_width: int,
        classes: Iterable[int],
        margin: float = 0.0,
        monitored_neurons: Optional[Sequence[int]] = None,
    ):
        self.layer_width = layer_width
        self.classes = sorted(set(int(c) for c in classes))
        if not self.classes:
            raise ValueError("monitor needs at least one class")
        self.margin = margin
        if monitored_neurons is None:
            self.monitored_neurons = np.arange(layer_width)
        else:
            self.monitored_neurons = np.asarray(sorted(set(monitored_neurons)))
        self.zones: Dict[int, BoxZone] = {}

    @classmethod
    def build(
        cls,
        model: Module,
        monitored_module: Module,
        train_dataset: Dataset,
        margin: float = 0.0,
        classes: Optional[Iterable[int]] = None,
        monitored_neurons: Optional[Sequence[int]] = None,
        batch_size: int = 256,
    ) -> "BoxMonitor":
        """Fit per-class hulls on correctly-classified training activations."""
        inputs, labels = stack_dataset(train_dataset)
        activations, logits = _extract_activations(
            model, monitored_module, inputs, batch_size
        )
        predictions = logits.argmax(axis=1)
        if classes is None:
            classes = np.unique(labels).tolist()
        monitor = cls(
            layer_width=activations.shape[1],
            classes=classes,
            margin=margin,
            monitored_neurons=monitored_neurons,
        )
        projected = activations[:, monitor.monitored_neurons]
        for c in monitor.classes:
            mask = (labels == c) & (predictions == c)
            if mask.any():
                zone = BoxZone(len(monitor.monitored_neurons), margin)
                monitor.zones[c] = zone.fit(projected[mask])
        return monitor

    def check(self, activations: np.ndarray, predicted_classes: np.ndarray) -> np.ndarray:
        """True per row when the activation lies inside its class hull."""
        activations = np.atleast_2d(activations)
        predicted_classes = np.asarray(predicted_classes)
        projected = activations[:, self.monitored_neurons]
        supported = np.ones(len(activations), dtype=bool)
        for c in self.classes:
            mask = predicted_classes == c
            if not mask.any():
                continue
            zone = self.zones.get(c)
            if zone is None:
                supported[mask] = False
            else:
                supported[mask] = zone.contains_batch(projected[mask])
        return supported


def _extract_activations(model, monitored_module, inputs, batch_size):
    """Real-valued analogue of extract_patterns (no binarisation)."""
    model.eval()
    logits_chunks = []
    with ActivationTap(monitored_module) as tap:
        for start in range(0, len(inputs), batch_size):
            logits_chunks.append(model(Tensor(inputs[start : start + batch_size])).data)
    activations = tap.concatenated()
    activations = activations.reshape(activations.shape[0], -1)
    return activations, np.concatenate(logits_chunks, axis=0)
