"""Closing the drift loop: alarm → staging → absorption → versioned swap.

The paper's §I pitch is that "the frequent appearance of unseen patterns
provides an indicator of data distribution shift to the development
team".  The shift detectors (:mod:`repro.monitor.shift`) raise that
indicator; this module turns it into an *action* on the live serving
fleet:

1. **Staging.**  Every out-of-zone pattern flagged while serving is
   streamed into a per-class :class:`StagingZone` — a cheap append-only
   buffer, never queried on the hot path.
2. **Absorption.**  When a detector alarms, the :class:`DriftResponder`
   absorbs the staged patterns into a *candidate* monitor via
   :meth:`NeuronActivationMonitor.merge` (the bitset backend's in-place
   band-index merge keeps the candidate's pruner hot through the union).
3. **Re-calibration.**  γ is re-chosen on the candidate through the
   existing :meth:`GammaCalibrator.calibrate_patterns` sweep over a
   retained validation set — the same ``choose`` rule that picked the
   original radius, so the loop cannot drift away from the paper's
   selection criterion.
4. **Publication.**  The result is an immutable :class:`ZoneSnapshot`
   with a monotonically increasing *zone epoch*, carrying the per-shard
   portable payloads (the exact :meth:`MonitorShard.to_payload` wire
   form) plus the re-measured detector baselines.  The serving layer
   installs it fleet-atomically (``ShardRouter.apply_snapshot`` /
   ``ProcessShardPool.apply_snapshot``), so no block is ever answered by
   a mixed-epoch fleet and crash respawns rehydrate at the current
   epoch.

The responder owns the authoritative monitor between swaps; the serving
shards are always rehydrated copies of a published snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devtools.lint.runtime import named_lock
from repro.monitor.calibration import CalibrationResult, GammaCalibrator
from repro.monitor.monitor import NeuronActivationMonitor


@dataclass(frozen=True)
class ZoneSnapshot:
    """One immutable, versioned publication of the fleet's zone state.

    ``payloads`` holds one portable shard payload per serving shard (the
    :meth:`~repro.serving.shard.MonitorShard.to_payload` dict: metadata
    plus bit-packed deduplicated visited sets), so any process — current
    worker, crash replacement, or cold-started host — rehydrates the
    same zones from it.  ``epoch`` is strictly monotonic per responder;
    the serving layer rejects out-of-order installs.

    ``baseline_oop_rate`` / ``baseline_distances`` are re-measured on
    the retained validation set against the *new* zones at the *new* γ,
    ready to re-arm the inline shift detectors after the swap.
    """

    epoch: int
    gamma: int
    payloads: Tuple[Dict[str, object], ...]
    baseline_oop_rate: float = 0.0
    baseline_distances: Optional[np.ndarray] = None
    absorbed_patterns: int = 0
    absorbed_classes: Tuple[int, ...] = ()
    calibration: Optional[CalibrationResult] = None

    def __post_init__(self):
        if self.epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {self.epoch}")
        if self.gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {self.gamma}")
        if not self.payloads:
            raise ValueError("snapshot needs at least one shard payload")
        if self.baseline_distances is not None:
            # Freeze the array: the snapshot is shared across threads and
            # (conceptually) hosts, so nothing may mutate it in place.
            self.baseline_distances.setflags(write=False)

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return tuple(int(p["shard_id"]) for p in self.payloads)


class StagingZone:
    """Per-class buffer of flagged out-of-zone patterns awaiting absorption.

    Append-only and lock-protected: the serving loop appends flagged
    full-layer rows inline with verdict delivery, while the responder's
    absorption (running on an executor thread) drains atomically.  The
    buffer is *not* a comfort zone — it is never queried, never
    deduplicated, never enlarged; it only carries raw evidence to the
    next :meth:`DriftResponder.respond`.

    ``max_staged`` bounds each class's buffer: sustained drift with no
    (or a failing) responder would otherwise grow memory without bound.
    When a class exceeds the cap its *oldest* rows are dropped — the
    newest evidence is what the next absorption should see — and every
    dropped row is counted in :attr:`total_dropped` (surfaced as
    ``staged_dropped`` in the serving layer's ``drift_stats()``).
    """

    def __init__(self, layer_width: int, max_staged: Optional[int] = None):
        if layer_width <= 0:
            raise ValueError(f"layer_width must be positive, got {layer_width}")
        if max_staged is not None and max_staged <= 0:
            raise ValueError(f"max_staged must be positive, got {max_staged}")
        self.layer_width = layer_width
        self.max_staged = max_staged
        self._lock = named_lock("StagingZone._lock")
        self._staged: Dict[int, List[np.ndarray]] = {}
        self._total = 0
        self.total_ever = 0
        self.total_dropped = 0

    def _trim(self, class_id: int) -> None:
        """Drop oldest rows of one class down to ``max_staged`` (lock held)."""
        if self.max_staged is None:
            return
        chunks = self._staged.get(class_id, [])
        excess = sum(len(rows) for rows in chunks) - self.max_staged
        while excess > 0 and chunks:
            head = chunks[0]
            if len(head) <= excess:
                chunks.pop(0)
                dropped = len(head)
            else:
                chunks[0] = head[excess:]
                dropped = excess
            excess -= dropped
            self._total -= dropped
            self.total_dropped += dropped

    def add(self, patterns: np.ndarray, predicted_classes: np.ndarray) -> int:
        """Stage flagged rows under their predicted classes; returns count."""
        patterns = np.atleast_2d(np.asarray(patterns, dtype=np.uint8))
        if patterns.shape[1] != self.layer_width:
            raise ValueError(
                f"patterns have width {patterns.shape[1]}, "
                f"expected {self.layer_width}"
            )
        classes = np.atleast_1d(np.asarray(predicted_classes))
        if len(classes) != len(patterns):
            raise ValueError(
                f"length mismatch: {len(patterns)} patterns, "
                f"{len(classes)} classes"
            )
        if not len(patterns):
            return 0
        with self._lock:
            for c in np.unique(classes):
                rows = patterns[classes == c]
                # Copy: the serving layer hands us views into batch
                # buffers it will reuse.
                self._staged.setdefault(int(c), []).append(rows.copy())
                self._total += len(rows)
                self.total_ever += len(rows)
                self._trim(int(c))
        return len(patterns)

    @property
    def total(self) -> int:
        """Rows currently staged (since the last drain)."""
        with self._lock:
            return self._total

    def counts(self) -> Dict[int, int]:
        """Currently staged rows per class."""
        with self._lock:
            return {
                c: sum(len(rows) for rows in chunks)
                for c, chunks in self._staged.items()
            }

    def drain(self) -> Dict[int, np.ndarray]:
        """Atomically take everything staged (class → stacked row matrix)."""
        with self._lock:
            staged = {
                c: np.concatenate(chunks)
                for c, chunks in self._staged.items()
                if chunks
            }
            self._staged = {}
            self._total = 0
        return staged

    def __repr__(self) -> str:
        return f"StagingZone(width={self.layer_width}, staged={self.total})"


def partition_payloads(
    monitor: NeuronActivationMonitor,
    shard_layout: Sequence[Tuple[int, Sequence[int]]],
) -> List[Dict[str, object]]:
    """Slice a monitor into portable shard payloads along a given layout.

    ``shard_layout`` is ``[(shard_id, classes), ...]`` — normally the
    serving fleet's existing partition, so a published snapshot swaps
    zone *contents* without re-homing any class.  Every class in the
    layout must be covered by the monitor.
    """
    # Imported lazily: repro.serving imports repro.monitor, and the
    # payload format is owned by MonitorShard — this is the one place the
    # monitor package reaches back up into serving.
    from repro.serving.shard import MonitorShard

    payloads = []
    for shard_id, classes in shard_layout:
        missing = [c for c in classes if c not in monitor.zones]
        if missing:
            raise ValueError(
                f"shard {shard_id} expects classes {missing} the monitor "
                f"does not cover"
            )
        piece = NeuronActivationMonitor(
            layer_width=monitor.layer_width,
            classes=classes,
            gamma=monitor.gamma,
            monitored_neurons=monitor.monitored_neurons,
            backend=monitor.backend_name,
            indexed=monitor.indexed,
        )
        for c in classes:
            visited = monitor.zones[c].backend.visited_patterns()
            if len(visited):
                piece.zones[c].add_patterns(visited)
        payloads.append(MonitorShard(int(shard_id), piece).to_payload())
    return payloads


class DriftResponder:
    """Absorb staged drift evidence and publish versioned zone snapshots.

    Parameters
    ----------
    monitor:
        The currently published monitor (the responder takes ownership:
        after each :meth:`respond` it points at the new candidate).
    val_patterns, val_predictions, val_labels:
        The retained validation sweep set: γ is re-chosen on it through
        ``calibrator.calibrate_patterns`` after every absorption, and the
        post-swap detector baselines are measured on it.
    calibrator:
        The γ selection rule (default: the paper's
        :class:`GammaCalibrator` with its standard silence target).
    min_staged:
        An alarm only triggers a response once at least this many
        patterns are staged — absorbing a handful of outliers would churn
        epochs without moving the zones.
    max_staged:
        Optional per-class staging cap (drop-oldest; see
        :class:`StagingZone`).
    store:
        Optional :class:`~repro.store.ZoneStore`: every response then
        durably logs the absorbed patterns, the re-chosen γ and a
        snapshot marker carrying the published epoch, so zone epochs
        survive restart and cross-host publication.  The responder's
        epoch counter resumes from the store's recorded epoch.
    """

    def __init__(
        self,
        monitor: NeuronActivationMonitor,
        val_patterns: np.ndarray,
        val_predictions: np.ndarray,
        val_labels: np.ndarray,
        calibrator: Optional[GammaCalibrator] = None,
        min_staged: int = 32,
        max_staged: Optional[int] = None,
        store=None,
    ):
        if min_staged <= 0:
            raise ValueError(f"min_staged must be positive, got {min_staged}")
        val_patterns = np.atleast_2d(np.asarray(val_patterns, dtype=np.uint8))
        val_predictions = np.asarray(val_predictions)
        val_labels = np.asarray(val_labels)
        if not (len(val_patterns) == len(val_predictions) == len(val_labels)):
            raise ValueError(
                f"length mismatch: {len(val_patterns)} patterns, "
                f"{len(val_predictions)} predictions, {len(val_labels)} labels"
            )
        if len(val_patterns) == 0:
            raise ValueError("responder needs a non-empty validation set")
        self.monitor = monitor
        self.staging = StagingZone(monitor.layer_width, max_staged=max_staged)
        self.calibrator = calibrator if calibrator is not None else GammaCalibrator()
        self.min_staged = min_staged
        self._val_patterns = val_patterns
        self._val_predictions = val_predictions
        self._val_labels = val_labels
        self._store = store
        if store is not None and monitor.store is not store:
            # Initializes a fresh store with the monitor's config and
            # current visited sets; on an existing store this validates
            # config agreement and (re-)registers the write-through.
            monitor.attach_store(store)
        # Epochs must stay monotonic across restarts: resume from the
        # store's last durable snapshot marker.
        self.epoch = (  # lint: disable=epoch-monotonicity -- constructor resume from the durable marker; WAL append order is the guard
            store.epoch if store is not None and store.initialized else 0
        )
        self.absorptions = 0
        self.total_absorbed = 0
        self.last_calibration: Optional[CalibrationResult] = None
        self.last_snapshot: Optional[ZoneSnapshot] = None
        self._lock = named_lock("DriftResponder._lock")

    # ------------------------------------------------------------------
    # baselines (detector seeding)
    # ------------------------------------------------------------------
    def baseline_oop_rate(self) -> float:
        """Out-of-pattern rate of the current monitor on the retained set."""
        supported = self.monitor.check(self._val_patterns, self._val_predictions)
        return 1.0 - float(supported.mean())

    def baseline_distances(self) -> np.ndarray:
        """Exact distances of the retained set against the current zones."""
        return self.monitor.min_distances(self._val_patterns, self._val_predictions)

    def ready(self) -> bool:
        """Whether enough evidence is staged for an alarm to trigger."""
        return self.staging.total >= self.min_staged

    # ------------------------------------------------------------------
    # the response
    # ------------------------------------------------------------------
    def respond(
        self, shard_layout: Sequence[Tuple[int, Sequence[int]]]
    ) -> Optional[ZoneSnapshot]:
        """One full drift response: absorb → re-choose γ → publish.

        Returns the new :class:`ZoneSnapshot`, or ``None`` when fewer
        than ``min_staged`` patterns are staged (the alarm fired on thin
        evidence — leave the staging buffer to keep filling).  Serialised
        under a lock: concurrent alarms collapse into one response.
        """
        with self._lock:
            if self.staging.total < self.min_staged:
                return None
            staged = self.staging.drain()
            # Only monitored classes ever get flagged (unmonitored rows
            # are trusted), so staged keys are always coverable.
            staged = {c: rows for c, rows in staged.items() if c in self.monitor.zones}
            if not staged:
                return None
            staging_monitor = NeuronActivationMonitor(
                layer_width=self.monitor.layer_width,
                classes=list(staged),
                gamma=self.monitor.gamma,
                monitored_neurons=self.monitor.monitored_neurons,
                backend=self.monitor.backend_name,
                indexed=self.monitor.indexed,
            )
            for c, rows in staged.items():
                staging_monitor.zones[c].add_patterns(staging_monitor.project(rows))
            # Candidate = union of published zones and staging zones; the
            # gamma/indexed agreement check is live here by construction
            # (the staging monitor copies both from the current monitor).
            candidate = NeuronActivationMonitor.merge(
                [self.monitor, staging_monitor]
            )
            # Re-choose γ with the exact rule that picked the original
            # radius; the candidate is left at the chosen value.
            calibration = self.calibrator.calibrate_patterns(
                candidate,
                self._val_patterns,
                self._val_predictions,
                self._val_labels,
            )
            supported = candidate.check(self._val_patterns, self._val_predictions)
            distances = candidate.min_distances(
                self._val_patterns, self._val_predictions
            )
            absorbed = int(sum(len(rows) for rows in staged.values()))
            snapshot = ZoneSnapshot(
                epoch=self.epoch + 1,
                gamma=candidate.gamma,
                payloads=tuple(partition_payloads(candidate, shard_layout)),
                baseline_oop_rate=1.0 - float(supported.mean()),
                baseline_distances=distances,
                absorbed_patterns=absorbed,
                absorbed_classes=tuple(sorted(staged)),
                calibration=calibration,
            )
            if self._store is not None:
                # Durably log the delta before publishing: only rows that
                # were genuinely new to the pre-merge zones (replay is a
                # set union, but there is no reason to log known rows),
                # then γ if it moved, then the snapshot marker (fsync'd
                # under the default policy) carrying the new epoch.
                for c in sorted(staged):
                    fresh = self.monitor.zones[c]._fresh_rows(
                        self.monitor.project(staged[c])
                    )
                    if len(fresh):
                        self._store.append_insert(c, fresh)
                if candidate.gamma != self.monitor.gamma:
                    self._store.append_gamma(candidate.gamma)
                self._store.append_snapshot(
                    snapshot.epoch,
                    snapshot.gamma,
                    {
                        c: candidate.zones[c].num_visited_patterns
                        for c in candidate.classes
                    },
                )
                # The candidate takes over as the authoritative monitor;
                # keep its direct-insert path writing through as well.
                candidate.attach_store(self._store)
            self.monitor = candidate
            self.epoch = snapshot.epoch  # lint: disable=epoch-monotonicity -- snapshot.epoch is self.epoch + 1 computed above, under the same lock hold
            self.absorptions += 1
            self.total_absorbed += absorbed
            self.last_calibration = calibration
            self.last_snapshot = snapshot
            return snapshot

    def stats(self) -> Dict[str, object]:
        """Observability row for the serving layer's drift line."""
        return {
            "epoch": self.epoch,
            "gamma": self.monitor.gamma,
            "absorptions": self.absorptions,
            "absorbed_patterns": self.total_absorbed,
            "staged": self.staging.total,
            "staged_ever": self.staging.total_ever,
            "staged_dropped": self.staging.total_dropped,
        }

    def __repr__(self) -> str:
        return (
            f"DriftResponder(epoch={self.epoch}, gamma={self.monitor.gamma}, "
            f"absorptions={self.absorptions}, staged={self.staging.total})"
        )
