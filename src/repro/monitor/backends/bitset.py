"""Vectorized bitset zone backend.

Stores each class's visited patterns as deduplicated rows of packed bits
(8 neurons per byte, padded to whole 64-bit words) and answers whole query
matrices at once: a batched γ-membership check is one broadcast XOR
between the ``(N, W)`` query words and the ``(M, W)`` visited words, a
hardware popcount (``np.bitwise_count``, with a byte-LUT fallback for
older numpy), a row-wise minimum and a comparison against γ — all inside
numpy, no per-sample Python.

This is the NAP-monitor style representation (od-test lineage): exact, not
an abstraction, and the natural engine to race against the BDD backend.
γ = 0 takes a fully vectorized sorted-lookup fast path, and ``indexed=True``
enables the multi-index Hamming pruner (``index.py``) that makes γ > 0
queries sub-linear in the number of stored patterns.
"""
# lint: hot-path

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from repro.monitor.backends.base import ZoneBackend

#: popcount of every byte value — fallback when numpy lacks the hardware
#: ``bitwise_count`` ufunc (added in numpy 2.0).
_POPCOUNT = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
    axis=1, dtype=np.uint8
)

#: ``REPRO_FORCE_POPCOUNT_LUT=1`` forces the byte-LUT kernel even when the
#: hardware ufunc exists, so CI on numpy>=2 can still exercise the numpy<2
#: fallback path.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count") and os.environ.get(
    "REPRO_FORCE_POPCOUNT_LUT", ""
).lower() not in ("1", "true", "yes")

#: Cap on the temporary ``(chunk, M, W)`` XOR cube, in bytes.
_CHUNK_BYTES = 1 << 26  # 64 MiB


def _popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    bytes_view = words.view(np.uint8)
    return _POPCOUNT[bytes_view].reshape(words.shape + (8,)).sum(
        axis=-1, dtype=np.uint64
    )


def merge_sorted_pair(
    old_values: np.ndarray,
    new_values: np.ndarray,
    old_payload: Optional[np.ndarray] = None,
    new_payload: Optional[np.ndarray] = None,
):
    """Merge two sorted value columns (and aligned payload) in O(M + K).

    One ``searchsorted`` of the K new values plus two linear scatters —
    the kernel behind the backend's incremental dedup-array merge and
    the band-index / prototype-ring merges in ``index.py``.  Returns
    ``(merged_values, merged_payload)`` (payload ``None`` when omitted).
    """
    pos = np.searchsorted(old_values, new_values)
    slots = pos + np.arange(len(new_values))
    merged = np.empty(len(old_values) + len(new_values), dtype=old_values.dtype)
    merged[slots] = new_values
    keep = np.ones(len(merged), dtype=bool)
    keep[slots] = False
    merged[keep] = old_values
    if old_payload is None:
        return merged, None
    payload = np.empty(len(merged), dtype=old_payload.dtype)
    payload[slots] = new_payload
    payload[keep] = old_payload
    return merged, payload


class BitsetZoneBackend(ZoneBackend):
    """Deduplicated packed-pattern words + vectorized XOR/popcount queries.

    ``indexed=True`` arms the multi-index Hamming pruner
    (:class:`~repro.monitor.backends.index.MultiIndexHammingIndex`): γ > 0
    queries first shortlist candidates through γ+1 exact band lookups and
    a class-prototype distance ring, and only the shortlist reaches the
    XOR/popcount kernel.  Indices are built lazily per γ on first query;
    :meth:`add_patterns` merges appended rows into each built index's
    per-band sorted orders in place (dropping an index only when the
    merge fraction is large enough that a rebuild recovers pruning
    power); when pruning would not pay (few stored patterns, bands too
    narrow) the query silently falls back to the brute kernel, so
    verdicts are always bit-identical.
    """

    name = "bitset"

    #: Exact |Z^γ| counting enumerates the enlarged zone; stop past this.
    _SIZE_BUDGET = 2_000_000

    #: Below this much stored work (pattern rows × words per row) the
    #: brute kernel beats the index's per-query bookkeeping.
    _INDEX_MIN_WORK = 2048
    #: Bands narrower than this collide so often the shortlist is ~everything.
    _INDEX_MIN_BAND_BITS = 8

    def __init__(self, num_vars: int, indexed: bool = False):
        super().__init__(num_vars)
        self._row_bytes = (num_vars + 7) // 8
        self._row_words = (self._row_bytes + 7) // 8
        self._void = np.dtype((np.void, self._row_words * 8))
        self._words = np.zeros((0, self._row_words), dtype=np.uint64)
        #: Sorted void view of ``_words`` rows — the vectorized membership
        #: structure behind dedup on insert and the γ=0 fast path.
        self._sorted_void = self._words.view(self._void).ravel()
        self.indexed = bool(indexed)
        self._indices: Dict[int, "object"] = {}

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------
    def _pack_words(self, patterns: np.ndarray) -> np.ndarray:
        """``(N, num_vars)`` 0/1 rows -> ``(N, row_words)`` uint64 words."""
        packed = np.packbits(patterns, axis=1)
        pad = self._row_words * 8 - self._row_bytes
        if pad:
            packed = np.pad(packed, ((0, 0), (0, pad)))
        return np.ascontiguousarray(packed).view(np.uint64)

    def _member_mask(self, words: np.ndarray) -> np.ndarray:
        """Vectorized exact membership of packed rows in the stored set."""
        if not len(self._sorted_void):
            return np.zeros(len(words), dtype=bool)
        queries = np.ascontiguousarray(words).view(self._void).ravel()
        pos = np.searchsorted(self._sorted_void, queries)
        pos = np.minimum(pos, len(self._sorted_void) - 1)
        return self._sorted_void[pos] == queries

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_patterns(self, patterns: np.ndarray) -> None:
        patterns = self._validate(patterns)
        if len(patterns) == 0:
            return
        if patterns.max(initial=0) > 1:
            raise ValueError("pattern bits must be 0 or 1")
        # Intra-batch dedup and the cross-batch filter both run at C speed:
        # unique void rows, then a sorted-lookup membership test against the
        # stored set (no per-row Python, however large the zone).
        self._add_words(np.unique(self._pack_words(patterns), axis=0))

    def add_packed(
        self, packed: np.ndarray, assume_sorted_unique: bool = False
    ) -> np.ndarray:
        """Bulk-insert ``(N, row_bytes)`` bit-packed rows (store cold start).

        The zone store and the portable payloads both carry patterns in
        ``pack_patterns`` form; this entry point skips the unpackbits →
        packbits round trip of :meth:`add_patterns` and goes straight to
        the word representation.  Bits past ``num_vars`` are masked off,
        so foreign padding can never make two equal patterns distinct.
        Returns the packed rows that were actually new (the write-through
        sink logs exactly these).

        ``assume_sorted_unique`` marks rows that arrive deduplicated in
        lexicographic byte order — exactly what ``np.unique(rows,
        axis=0)`` produces and what compacted store segments hold.  The
        claim is *verified* with one O(N) strictly-increasing pass (so a
        foreign segment can never corrupt the sorted structure); when it
        holds, the two O(N log N) sorts of the general path are skipped,
        which is what makes the mmap cold start beat an archive parse.
        """
        packed = np.ascontiguousarray(np.atleast_2d(packed), dtype=np.uint8)
        if packed.shape[1] != self._row_bytes:
            raise ValueError(
                f"packed rows have {packed.shape[1]} bytes, "
                f"expected {self._row_bytes}"
            )
        if len(packed) == 0:
            return packed.reshape(0, self._row_bytes)
        tail_bits = self._row_bytes * 8 - self.num_vars
        if tail_bits:
            packed = packed.copy()
            packed[:, -1] &= 0xFF << tail_bits & 0xFF
        pad = self._row_words * 8 - self._row_bytes
        if pad:
            packed = np.pad(packed, ((0, 0), (0, pad)))
        packed = np.ascontiguousarray(packed)
        row_view = packed.view(np.uint64)
        presorted = False
        if assume_sorted_unique and len(packed) > 1:
            # Verify strict lexicographic byte order (== void/memcmp
            # order) in one vectorized pass: big-endian word values sort
            # exactly like their bytes, so a row pair is ordered at its
            # first differing word.
            be = packed.view(">u8")
            a, b = be[:-1], be[1:]
            neq = a != b
            distinct = neq.any(axis=1)
            first = neq.argmax(axis=1)
            idx = np.arange(len(a))
            presorted = bool(
                np.all(distinct & (a[idx, first] < b[idx, first]))
            )
        elif assume_sorted_unique:
            presorted = True
        if presorted:
            words = row_view
        else:
            # np.unique sorts by uint64 *columns*; _merge_sorted re-sorts
            # the fresh rows into void byte order afterwards.
            words = np.unique(row_view, axis=0)
        fresh_words = self._add_words(words, void_sorted=presorted)
        return fresh_words.view(np.uint8)[:, : self._row_bytes]

    def _add_words(
        self, words: np.ndarray, void_sorted: bool = False
    ) -> np.ndarray:
        """Merge already-deduplicated packed word rows; returns the fresh ones."""
        fresh = ~self._member_mask(words)
        if not fresh.any():
            return words[:0]
        old_rows = len(self._words)
        self._words = np.concatenate([self._words, words[fresh]], axis=0)
        # A boolean take from void-sorted rows stays void-sorted.
        self._sorted_void = self._merge_sorted(
            words[fresh], presorted=void_sorted
        )
        # Built per-γ band indices absorb the appended rows in place
        # (searchsorted + scatter per band); an index that declines —
        # the merged rows would outnumber its build-time rows, so the
        # frozen triage prototype has gone stale — is dropped and
        # lazily rebuilt on the next query.
        if self._indices:
            self._indices = {
                gamma: index
                for gamma, index in self._indices.items()
                if index.merge(self._words, old_rows)
            }
        return words[fresh]

    def _merge_sorted(
        self, fresh_words: np.ndarray, presorted: bool = False
    ) -> np.ndarray:
        """Merge new (already-deduplicated) rows into the sorted void array.

        An incremental add used to re-sort the full dedup array —
        O(M log M) per call however small the batch.  The stored array is
        already sorted, so merging is one ``searchsorted`` of the K new
        rows plus one linear scatter: O(M + K log K), which is what makes
        high-frequency fleet merges cheap (ROADMAP "Indexed merge/rebuild
        cost").  Note ``np.unique(..., axis=0)`` sorts by uint64 *column*
        order, which differs from void byte order on little-endian hosts,
        so the small batch is re-sorted as void rows first —
        ``presorted`` rows (verified void order, the store cold-start
        path) skip that sort.
        """
        new_sorted = fresh_words.view(self._void).ravel()
        if not presorted:
            new_sorted = np.sort(new_sorted)
        old = self._sorted_void
        if not len(old):
            return new_sorted
        merged, _ = merge_sorted_pair(old, new_sorted)
        return merged

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _index_pays(self, gamma: int) -> bool:
        """Whether the pruned index beats the brute kernel for this γ."""
        return (
            self.indexed
            and gamma + 1 <= self.num_vars  # pigeonhole needs γ+1 bands
            and len(self._words) * self._row_words >= self._INDEX_MIN_WORK
            and self.num_vars // (gamma + 1) >= self._INDEX_MIN_BAND_BITS
        )

    def _index_for(self, gamma: int):
        index = self._indices.get(gamma)
        if index is None:
            from repro.monitor.backends.index import MultiIndexHammingIndex

            index = MultiIndexHammingIndex(self._words, self.num_vars, gamma)
            self._indices[gamma] = index
        return index

    def contains_batch(self, patterns: np.ndarray, gamma: int) -> np.ndarray:
        patterns = self._validate(patterns)
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        n = len(patterns)
        if n == 0 or not len(self._words):
            return np.zeros(n, dtype=bool)
        words = self._pack_words(patterns)
        if gamma == 0:
            return self._member_mask(words)
        if self._index_pays(gamma):
            return self._index_for(gamma).contains(words)
        return self._min_distances_packed(words) <= gamma

    def min_distances(
        self, patterns: np.ndarray, cap: Optional[int] = None
    ) -> np.ndarray:
        """Per-row minimum Hamming distance to the visited set
        (``num_vars + 1`` when nothing was recorded).

        ``cap=None`` (exact distances everywhere) always runs the brute
        kernel: the band index can only bound distances by its γ (beyond
        the shortlist the true minimum is unknowable), so the unbounded
        workload stays on the exhaustive scan.

        ``cap=k`` answers the bounded question "exact distance, or > k":
        rows within distance k get their exact distance, rows farther get
        ``k + 1``, i.e. the result is exactly ``min(true_distance, k+1)``.
        The bounded query *can* use the multi-index shortlist for γ = k —
        the pigeonhole candidate set provably contains every stored
        pattern within k, so the shortlist minimum equals the true
        minimum whenever it is ≤ k — which is what lets the serving
        layer's distance histograms ride the sub-linear index
        (ROADMAP "Index-accelerated distances").
        """
        words = self._pack_words(self._validate(patterns))
        if cap is None:
            return self._min_distances_packed(words)
        if cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        n = len(words)
        if not len(self._words):
            return np.full(n, min(self.num_vars + 1, cap + 1), dtype=np.int64)
        if cap == 0:
            out = np.ones(n, dtype=np.int64)
            out[self._member_mask(words)] = 0
            return out
        if self._index_pays(cap):
            return self._index_for(cap).bounded_min_distances(words)
        return np.minimum(self._min_distances_packed(words), cap + 1)

    def _min_distances_packed(self, words: np.ndarray) -> np.ndarray:
        """The workhorse: XOR every query row against every stored row,
        popcount the word lanes, reduce.  Queries are chunked so the
        ``(chunk, M, W)`` temporary stays under a fixed memory budget."""
        m = len(self._words)
        if m == 0:
            return np.full(len(words), self.num_vars + 1, dtype=np.int64)
        chunk = max(1, _CHUNK_BYTES // (m * self._row_words * 8))
        out = np.empty(len(words), dtype=np.int64)
        if self._row_words == 1:
            # Common monitor widths (<= 64 neurons) fit one word per row:
            # drop the word axis entirely for a pure 2-D kernel.
            zone = self._words[:, 0]
            queries = words[:, 0]
            for start in range(0, len(words), chunk):
                block = queries[start : start + chunk, None]
                distances = _popcount_words(block ^ zone[None, :])
                out[start : start + chunk] = distances.min(axis=1)
            return out
        zone = self._words[None, :, :]
        for start in range(0, len(words), chunk):
            block = words[start : start + chunk, None, :]
            distances = _popcount_words(block ^ zone).sum(axis=2, dtype=np.int64)
            out[start : start + chunk] = distances.min(axis=1)
        return out

    def is_empty(self) -> bool:
        return not len(self._words)

    def num_visited(self) -> int:
        return len(self._words)

    def visited_patterns(self) -> np.ndarray:
        if not len(self._words):
            return np.zeros((0, self.num_vars), dtype=np.uint8)
        bytes_view = self._words.view(np.uint8)[:, : self._row_bytes]
        return np.unpackbits(bytes_view, axis=1)[:, : self.num_vars]

    def size(self, gamma: int) -> int:  # lint: disable=hot-path-purity -- bounded diagnostic enumeration (budget-capped BFS), never on the serving path
        """Exact ``|Z^γ|`` by breadth-first Hamming expansion.

        Exact counting of a union of Hamming balls needs enumeration; the
        expansion is bounded by ``_SIZE_BUDGET`` grown patterns, beyond
        which a ``ValueError`` explains the situation (the BDD backend
        counts symbolically and has no such limit).
        """
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        if self.is_empty():
            return 0
        if gamma == 0:
            return len(self._words)
        budget = self._SIZE_BUDGET
        # Bail out instantly when even the union upper bound (every ball
        # disjoint) exceeds the budget — otherwise the BFS below could
        # grind for minutes before giving the same answer.
        from math import comb

        ball = sum(comb(self.num_vars, k) for k in range(gamma + 1))
        if len(self._words) * ball > budget:
            raise ValueError(
                f"zone enumeration upper bound {len(self._words) * ball} "
                f"exceeds {budget} patterns; use the bdd backend for exact "
                "counting of large zones"
            )
        # Work on integers: bit j of the value is neuron j's pattern bit.
        current = set()
        for row in self.visited_patterns():
            value = 0
            for j in np.flatnonzero(row):
                value |= 1 << int(j)
            current.add(value)
        frontier = set(current)
        for _ in range(gamma):
            next_frontier = set()
            for value in frontier:
                for j in range(self.num_vars):
                    flipped = value ^ (1 << j)
                    if flipped not in current:
                        current.add(flipped)
                        next_frontier.add(flipped)
                        if len(current) > budget:
                            raise ValueError(
                                f"zone enumeration exceeds {budget} patterns; "
                                "use the bdd backend for exact counting of "
                                "large zones"
                            )
            if not next_frontier:
                break
            frontier = next_frontier
        return len(current)

    def statistics(self, gamma: int) -> Dict[str, float]:
        visited = len(self._words)
        total = float(2 ** self.num_vars)
        try:
            patterns = float(self.size(gamma))
        except ValueError:
            # Zone too large to enumerate exactly: NaN propagates loudly
            # through downstream aggregation instead of skewing means.
            patterns = float("nan")
        stats = {
            "patterns": patterns,
            "density": patterns / total,
            "visited_patterns": visited,
            "storage_bytes": int(self._words.nbytes),
            "popcount_kernel": "bitwise_count" if _HAS_BITWISE_COUNT else "lut",
            "indexed": self.indexed,
        }
        index = self._indices.get(gamma)
        if index is not None:
            stats.update(index.statistics())
        return stats
