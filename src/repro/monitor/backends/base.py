"""The ``ZoneBackend`` protocol — pluggable comfort-zone engines.

A comfort zone is semantically a set of visited activation patterns plus a
γ-Hamming enlargement (Definition 2 of the paper).  Everything the monitor
stack needs from a zone is captured by this small interface, so the storage
and query strategy can be swapped:

* :class:`~repro.monitor.backends.bdd.BDDZoneBackend` — canonical ROBDD
  representation; per-query cost is linear in the number of monitored
  neurons, independent of how many patterns were recorded.
* :class:`~repro.monitor.backends.bitset.BitsetZoneBackend` — deduplicated
  packed bit rows; batched queries are answered with vectorized XOR +
  popcount over the whole query matrix at once.

Both backends must produce bit-identical verdicts for the same visited set
and γ (enforced by ``tests/test_backend_equivalence.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence, Union

import numpy as np


class ZoneBackend(ABC):
    """Abstract store of one class's visited patterns, queried under γ.

    Backends are γ-agnostic at rest: γ is a *query* parameter, so a single
    store serves calibration sweeps over many γ values without rebuilding
    state (backends may cache per-γ derived structures internally).
    """

    #: Registry key, e.g. ``"bdd"`` or ``"bitset"``.
    name: str = ""

    def __init__(self, num_vars: int):
        if num_vars <= 0:
            raise ValueError(f"num_vars must be positive, got {num_vars}")
        self.num_vars = num_vars

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @abstractmethod
    def add_patterns(self, patterns: np.ndarray) -> None:
        """Record visited patterns from a ``(N, num_vars)`` 0/1 array."""

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @abstractmethod
    def contains_batch(self, patterns: np.ndarray, gamma: int) -> np.ndarray:
        """Bool per row: is the pattern within Hamming distance γ of the
        visited set?  ``patterns`` is ``(N, num_vars)``."""

    def contains(self, pattern: Union[Sequence[int], np.ndarray], gamma: int) -> bool:
        """Single-pattern convenience wrapper around :meth:`contains_batch`."""
        row = np.asarray(pattern, dtype=np.uint8).reshape(1, -1)
        return bool(self.contains_batch(row, gamma)[0])

    @abstractmethod
    def min_distances(
        self, patterns: np.ndarray, cap: Optional[int] = None
    ) -> np.ndarray:
        """Per-row minimum Hamming distance from ``(N, num_vars)`` queries
        to the visited set ``Z^0``.

        The sentinel for an empty store is ``num_vars + 1`` (beyond any
        achievable distance), so ``min_distances(Q) <= gamma`` is always
        equivalent to ``contains_batch(Q, gamma)``.  Exact distances feed
        the serving layer's distance histograms — a sharper shift signal
        than the binary verdict stream (paper §V).

        ``cap=k`` asks the bounded question "exact distance, or > k": the
        result must equal ``min(true_distance, k+1)`` elementwise.
        Backends may answer the bounded form much more cheaply (the
        indexed bitset engine serves it from the γ = k pigeonhole
        shortlist instead of scanning all M rows; the BDD engine stops
        its γ-sweep at k), and ``min_distances(Q, cap=k) <= gamma`` stays
        equivalent to ``contains_batch(Q, gamma)`` for every gamma ≤ k."""

    @abstractmethod
    def is_empty(self) -> bool:
        """True when no pattern was ever recorded."""

    @abstractmethod
    def num_visited(self) -> int:
        """Number of *distinct* patterns recorded (``|Z^0|``).

        Backends deduplicate on insert, so this is the dedup count — the
        one true cardinality behind ``ComfortZone.num_visited_patterns``
        and the serialisation round-trip."""

    @abstractmethod
    def visited_patterns(self) -> np.ndarray:
        """The deduplicated visited set ``Z^0`` as a ``(M, num_vars)``
        uint8 array — the portable serialisation format shared by all
        backends (save/load round-trips re-add these rows)."""

    @abstractmethod
    def size(self, gamma: int) -> int:
        """Exact number of patterns in ``Z^γ``."""

    @abstractmethod
    def statistics(self, gamma: int) -> Dict[str, float]:
        """Zone statistics; must include ``patterns``, ``density`` and
        ``visited_patterns`` keys (backends may add engine-specific ones,
        e.g. BDD node counts or bitset storage bytes)."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _validate(self, patterns: np.ndarray) -> np.ndarray:
        patterns = np.atleast_2d(np.asarray(patterns, dtype=np.uint8))
        if patterns.shape[1] != self.num_vars:
            raise ValueError(
                f"patterns have width {patterns.shape[1]}, expected {self.num_vars}"
            )
        return patterns

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_vars={self.num_vars})"
