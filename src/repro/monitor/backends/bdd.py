"""ROBDD zone backend — the paper's original engine, upgraded.

Visited patterns are held as a canonical BDD (one shared
:class:`~repro.bdd.manager.BDDManager` across the zones of one monitor).
Upgrades over the seed implementation:

* bulk construction: ``add_patterns`` funnels whole pattern matrices
  through ``BDDManager.from_patterns`` (sorted prefix splitting) instead
  of N sequential cube inserts;
* γ as a query parameter with a per-γ cache of enlarged zones, built
  incrementally from the largest cached γ below the request;
* batched membership via ``BDDManager.contains_batch``;
* apply/ite cache statistics surfaced through :meth:`statistics`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.bdd import BDDManager
from repro.bdd.analysis import enumerate_models, sat_count, zone_statistics
from repro.monitor.backends.base import ZoneBackend


class BDDZoneBackend(ZoneBackend):
    """Canonical BDD pattern store with γ-indexed enlargement cache."""

    name = "bdd"

    def __init__(self, num_vars: int, manager: Optional[BDDManager] = None):
        super().__init__(num_vars)
        if manager is not None and manager.num_vars != num_vars:
            raise ValueError(
                f"shared manager has {manager.num_vars} variables, need {num_vars}"
            )
        self.manager = manager if manager is not None else BDDManager(num_vars)
        self._visited = self.manager.empty_set()
        # gamma -> ref of Z^gamma; gamma 0 is always the visited set itself.
        self._zone_cache: Dict[int, int] = {}
        # Lazily enumerated Z^0 matrix (min_distances far-row fallback);
        # enumeration is a pure-Python diagram walk, so it is cached until
        # the visited set changes.
        self._visited_matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_patterns(self, patterns: np.ndarray) -> None:
        patterns = self._validate(patterns)
        if len(patterns) == 0:
            return
        block = self.manager.from_patterns(patterns)
        self._visited = self.manager.apply_or(self._visited, block)
        self._zone_cache.clear()
        self._visited_matrix = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def zone_ref(self, gamma: int) -> int:
        """BDD ref of ``Z^γ``, enlarging incrementally from cached zones."""
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        if gamma == 0:
            return self._visited
        cached = self._zone_cache.get(gamma)
        if cached is not None:
            return cached
        # Start from the largest cached gamma below the request: the γ
        # sweep of the calibrator then costs one expansion step per γ.
        base_gamma = max(
            (g for g in self._zone_cache if g < gamma), default=0
        )
        ref = self._zone_cache.get(base_gamma, self._visited)
        for g in range(base_gamma, gamma):
            expanded = self.manager.hamming_expand(ref)
            self._zone_cache[g + 1] = expanded
            if expanded == ref:
                # Saturated: every larger gamma is the same zone.
                for extra in range(g + 1, gamma + 1):
                    self._zone_cache[extra] = expanded
                break
            ref = expanded
        return self._zone_cache[gamma]

    @property
    def visited_ref(self) -> int:
        """BDD ref of ``Z^0`` (the raw visited set)."""
        return self._visited

    def contains_batch(self, patterns: np.ndarray, gamma: int) -> np.ndarray:
        patterns = self._validate(patterns)
        return self.manager.contains_batch(self.zone_ref(gamma), patterns)

    #: Largest γ recovered through zone expansion before min_distances
    #: falls back to the explicit visited set.  γ-ball materialisation is
    #: the BDD's one expensive operation (node counts peak near the
    #: half-full cube), while serving traffic is concentrated at small
    #: distances — so the cache answers the common case and far-away rows
    #: are finished exactly with one vectorised sweep over ``Z^0``.
    max_expand_gamma = 4

    def min_distances(
        self, patterns: np.ndarray, cap: Optional[int] = None
    ) -> np.ndarray:
        """Per-row minimum Hamming distance to the visited set.

        The diagram answers membership, not distance, so distances are
        recovered through the per-γ zone cache: every query starts at
        ``Z^0`` and the radius grows until the pattern is contained — the
        distance of a row is the first γ whose zone accepts it.  The γ
        sweep stops as soon as every row is resolved; each expansion step
        is cached, so a stream of queries against a warm cache costs one
        ``contains_batch`` per distinct distance value observed.  Rows
        further than :attr:`max_expand_gamma` (beyond any γ a calibrated
        monitor serves) are resolved exactly against the enumerated
        visited set instead of materialising enormous γ-balls.
        Empty store: ``num_vars + 1`` for every row.

        ``cap=k`` (the bounded form, "exact distance, or > k") truncates
        the γ-sweep at k and stamps unresolved rows ``k + 1`` — for
        k within the expansion budget no explicit enumeration of ``Z^0``
        is ever needed, the natural bounded query for a diagram.
        """
        patterns = self._validate(patterns)
        if cap is not None and cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        sentinel = self.num_vars + 1
        if cap is not None:
            sentinel = min(sentinel, cap + 1)
        out = np.full(len(patterns), sentinel, dtype=np.int64)
        if len(patterns) == 0 or self.is_empty():
            return out
        unresolved = np.arange(len(patterns))
        cached_max = max(self._zone_cache, default=0)
        stop_gamma = min(max(self.max_expand_gamma, cached_max), self.num_vars)
        if cap is not None:
            stop_gamma = min(stop_gamma, cap)
        for gamma in range(stop_gamma + 1):
            hit = self.contains_batch(patterns[unresolved], gamma)
            out[unresolved[hit]] = gamma
            unresolved = unresolved[~hit]
            if len(unresolved) == 0:
                return out
        if cap is not None and stop_gamma == cap:
            # Bounded sweep exhausted: the rows left are provably > cap
            # and already hold the cap + 1 sentinel.
            return out
        # Exact tail: one vectorised Hamming sweep of the remaining rows
        # against Z^0 (the explicit pattern matrix every backend can emit).
        if self._visited_matrix is None:
            self._visited_matrix = self.visited_patterns()
        visited = self._visited_matrix
        rest = patterns[unresolved]
        tail = (rest[:, None, :] != visited[None, :, :]).sum(axis=2).min(axis=1)
        out[unresolved] = tail if cap is None else np.minimum(tail, cap + 1)
        return out

    def is_empty(self) -> bool:
        return self._visited == self.manager.empty_set()

    def num_visited(self) -> int:
        return sat_count(self.manager, self._visited)

    def visited_patterns(self) -> np.ndarray:
        rows = list(enumerate_models(self.manager, self._visited))
        if not rows:
            return np.zeros((0, self.num_vars), dtype=np.uint8)
        return np.asarray(rows, dtype=np.uint8)

    def size(self, gamma: int) -> int:
        return sat_count(self.manager, self.zone_ref(gamma))

    def statistics(self, gamma: int) -> Dict[str, float]:
        stats = zone_statistics(self.manager, self.zone_ref(gamma))
        stats["visited_patterns"] = sat_count(self.manager, self._visited)
        stats["cache"] = self.manager.cache_stats()
        return stats
