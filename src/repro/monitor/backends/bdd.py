"""ROBDD zone backend — the paper's original engine, upgraded.

Visited patterns are held as a canonical BDD (one shared
:class:`~repro.bdd.manager.BDDManager` across the zones of one monitor).
Upgrades over the seed implementation:

* complement edges in the manager: negation is an O(1) edge flip and
  ``Z`` / its complement share storage;
* bulk construction: ``add_patterns`` funnels whole pattern matrices
  through ``BDDManager.from_patterns`` (sorted prefix splitting) instead
  of N sequential cube inserts;
* γ as a query parameter with a per-γ cache of enlarged zones, built
  incrementally from the largest cached γ below the request;
* batched membership via the vectorized ``BDDManager.contains_batch``;
* unique-table garbage collection: the backend *pins* its visited set
  and every cached zone as GC roots (``incref``/``decref``) and
  registers a remap listener, so automatic collections (armed via
  ``gc_threshold`` / ``REPRO_BDD_GC_THRESHOLD``) and sifting reorders
  (``auto_reorder`` / ``REPRO_BDD_AUTO_REORDER``) can compact the node
  table mid-lifetime without invalidating the backend's refs;
* engine statistics (GC, reorder, cache hit rates) surfaced through
  :meth:`statistics`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.bdd import BDDManager
from repro.bdd.analysis import enumerate_models, sat_count, zone_statistics
from repro.bdd.manager import _env_flag, _env_int
from repro.monitor.backends.base import ZoneBackend

#: Default auto-GC trigger for backend-owned managers (physical nodes).
#: Bare ``BDDManager()`` instances default to *disabled* because raw refs
#: held by arbitrary callers are not GC roots; the backend pins every ref
#: it keeps, so auto-GC is safe here.  ``REPRO_BDD_GC_THRESHOLD``
#: overrides (0 disables), and tiny values are how the forced-GC
#: equivalence suites shake the engine.
DEFAULT_GC_THRESHOLD = 100_000


def make_zone_manager(num_vars: int,
                      gc_threshold: Optional[int] = None,
                      auto_reorder: Optional[bool] = None) -> BDDManager:
    """A :class:`BDDManager` configured for zone duty (env-overridable)."""
    if gc_threshold is None:
        gc_threshold = _env_int("REPRO_BDD_GC_THRESHOLD", DEFAULT_GC_THRESHOLD)
    if auto_reorder is None:
        auto_reorder = _env_flag("REPRO_BDD_AUTO_REORDER", False)
    return BDDManager(
        num_vars, gc_threshold=gc_threshold, auto_reorder=auto_reorder
    )


class BDDZoneBackend(ZoneBackend):
    """Canonical BDD pattern store with γ-indexed enlargement cache.

    Parameters
    ----------
    num_vars:
        Pattern width.
    manager:
        Optionally share one :class:`BDDManager` across zones.  A fresh
        manager (the default) is created through
        :func:`make_zone_manager`, i.e. with auto-GC armed.
    gc_threshold / auto_reorder:
        Forwarded to :func:`make_zone_manager` when no shared manager is
        given (``None`` = environment default).
    order:
        Optional initial variable order (level -> pattern column),
        installed before any node exists — the static-heuristic seed for
        sifting.  Only valid on an empty manager.
    """

    name = "bdd"

    def __init__(
        self,
        num_vars: int,
        manager: Optional[BDDManager] = None,
        gc_threshold: Optional[int] = None,
        auto_reorder: Optional[bool] = None,
        order: Optional[Sequence[int]] = None,
    ):
        super().__init__(num_vars)
        if manager is not None and manager.num_vars != num_vars:
            raise ValueError(
                f"shared manager has {manager.num_vars} variables, need {num_vars}"
            )
        if manager is None:
            manager = make_zone_manager(
                num_vars, gc_threshold=gc_threshold, auto_reorder=auto_reorder
            )
        self.manager = manager
        if order is not None:
            self.manager.set_order(order)
        self._visited = self.manager.incref(self.manager.empty_set())
        # gamma -> ref of Z^gamma; gamma 0 is always the visited set itself.
        # Every cached ref is pinned so GC/reorder can never reclaim or
        # silently move a zone out from under the backend.
        self._zone_cache: Dict[int, int] = {}
        # Lazily enumerated Z^0 matrix (min_distances far-row fallback);
        # enumeration is a pure-Python diagram walk, so it is cached until
        # the visited set changes.  Rows are in variable order, so the
        # cache is stable across reorders.
        self._visited_matrix: Optional[np.ndarray] = None
        self.manager.register_remap_listener(self._on_remap)

    # ------------------------------------------------------------------
    # GC plumbing
    # ------------------------------------------------------------------
    def _on_remap(self, remap) -> None:
        """Table compacted (GC or reorder): rewrite every held ref.

        The manager remaps its own pin table; this listener keeps the
        backend's copies in sync, which is what lets the zone cache
        survive collections and mid-lifetime reorders.
        """
        self._visited = remap(self._visited)
        self._zone_cache = {g: remap(r) for g, r in self._zone_cache.items()}

    def _set_visited(self, ref: int) -> None:
        self.manager.incref(ref)
        self.manager.decref(self._visited)
        self._visited = ref

    def _drop_zone_cache(self) -> None:
        for ref in self._zone_cache.values():
            self.manager.decref(ref)
        self._zone_cache.clear()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_patterns(self, patterns: np.ndarray) -> None:
        patterns = self._validate(patterns)
        if len(patterns) == 0:
            return
        # Both calls below are GC safe points: an automatic collection
        # (or sift) inside them remaps `self._visited` through the
        # listener and returns the (possibly remapped) result ref.
        block = self.manager.from_patterns(patterns)
        merged = self.manager.apply_or(self._visited, block)
        self._set_visited(merged)
        self._drop_zone_cache()
        self._visited_matrix = None

    def reorder(self, method: str = "sift", **kwargs) -> Dict[str, int]:
        """Sift the shared manager; all pinned zone refs survive in place."""
        return self.manager.reorder(method=method, **kwargs)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def zone_ref(self, gamma: int) -> int:
        """BDD ref of ``Z^γ``, enlarging incrementally from cached zones."""
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        if gamma == 0:
            return self._visited
        cached = self._zone_cache.get(gamma)
        if cached is not None:
            return cached
        # Start from the largest cached gamma below the request: the γ
        # sweep of the calibrator then costs one expansion step per γ.
        base_gamma = max(
            (g for g in self._zone_cache if g < gamma), default=0
        )
        for g in range(base_gamma, gamma):
            base = self._zone_cache.get(g, self._visited) if g else self._visited
            expanded = self.manager.hamming_expand(base)
            # A GC inside the expansion may have remapped our pinned
            # refs; re-read the base for the saturation test.
            base_now = self._zone_cache.get(g, self._visited) if g else self._visited
            self.manager.incref(expanded)
            self._zone_cache[g + 1] = expanded
            if expanded == base_now:
                # Saturated: every larger gamma is the same zone.
                for extra in range(g + 2, gamma + 1):
                    self.manager.incref(expanded)
                    self._zone_cache[extra] = expanded
                break
        return self._zone_cache[gamma]

    @property
    def visited_ref(self) -> int:
        """BDD ref of ``Z^0`` (the raw visited set)."""
        return self._visited

    def contains_batch(self, patterns: np.ndarray, gamma: int) -> np.ndarray:
        patterns = self._validate(patterns)
        return self.manager.contains_batch(self.zone_ref(gamma), patterns)

    #: Largest γ recovered through zone expansion before min_distances
    #: falls back to the explicit visited set.  γ-ball materialisation is
    #: the BDD's one expensive operation (node counts peak near the
    #: half-full cube), while serving traffic is concentrated at small
    #: distances — so the cache answers the common case and far-away rows
    #: are finished exactly with one vectorised sweep over ``Z^0``.
    max_expand_gamma = 4

    def min_distances(
        self, patterns: np.ndarray, cap: Optional[int] = None
    ) -> np.ndarray:
        """Per-row minimum Hamming distance to the visited set.

        The diagram answers membership, not distance, so distances are
        recovered through the per-γ zone cache: every query starts at
        ``Z^0`` and the radius grows until the pattern is contained — the
        distance of a row is the first γ whose zone accepts it.  The γ
        sweep stops as soon as every row is resolved; each expansion step
        is cached, so a stream of queries against a warm cache costs one
        ``contains_batch`` per distinct distance value observed.  Rows
        further than :attr:`max_expand_gamma` (beyond any γ a calibrated
        monitor serves) are resolved exactly against the enumerated
        visited set instead of materialising enormous γ-balls.
        Empty store: ``num_vars + 1`` for every row.

        ``cap=k`` (the bounded form, "exact distance, or > k") truncates
        the γ-sweep at k and stamps unresolved rows ``k + 1`` — for
        k within the expansion budget no explicit enumeration of ``Z^0``
        is ever needed, the natural bounded query for a diagram.
        """
        patterns = self._validate(patterns)
        if cap is not None and cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        sentinel = self.num_vars + 1
        if cap is not None:
            sentinel = min(sentinel, cap + 1)
        out = np.full(len(patterns), sentinel, dtype=np.int64)
        if len(patterns) == 0 or self.is_empty():
            return out
        unresolved = np.arange(len(patterns))
        cached_max = max(self._zone_cache, default=0)
        stop_gamma = min(max(self.max_expand_gamma, cached_max), self.num_vars)
        if cap is not None:
            stop_gamma = min(stop_gamma, cap)
        for gamma in range(stop_gamma + 1):
            hit = self.contains_batch(patterns[unresolved], gamma)
            out[unresolved[hit]] = gamma
            unresolved = unresolved[~hit]
            if len(unresolved) == 0:
                return out
        if cap is not None and stop_gamma == cap:
            # Bounded sweep exhausted: the rows left are provably > cap
            # and already hold the cap + 1 sentinel.
            return out
        # Exact tail: one vectorised Hamming sweep of the remaining rows
        # against Z^0 (the explicit pattern matrix every backend can emit).
        if self._visited_matrix is None:
            self._visited_matrix = self.visited_patterns()
        visited = self._visited_matrix
        rest = patterns[unresolved]
        tail = (rest[:, None, :] != visited[None, :, :]).sum(axis=2).min(axis=1)
        out[unresolved] = tail if cap is None else np.minimum(tail, cap + 1)
        return out

    def is_empty(self) -> bool:
        return self._visited == self.manager.empty_set()

    def num_visited(self) -> int:
        return sat_count(self.manager, self._visited)

    def visited_patterns(self) -> np.ndarray:
        rows = list(enumerate_models(self.manager, self._visited))
        if not rows:
            return np.zeros((0, self.num_vars), dtype=np.uint8)
        return np.asarray(rows, dtype=np.uint8)

    def size(self, gamma: int) -> int:
        return sat_count(self.manager, self.zone_ref(gamma))

    def statistics(self, gamma: int) -> Dict[str, float]:
        stats = zone_statistics(self.manager, self.zone_ref(gamma))
        stats["visited_patterns"] = sat_count(self.manager, self._visited)
        stats["cache"] = self.manager.cache_stats()
        return stats
