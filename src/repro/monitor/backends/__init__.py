"""Pluggable comfort-zone backends.

See :mod:`repro.monitor.backends.base` for the protocol and README.md in
this directory for guidance on picking a backend.  Use ``backend="bdd"``
or ``backend="bitset"`` anywhere a monitor is built (``ComfortZone``,
``NeuronActivationMonitor``, ``DetectionMonitor``, ``build_monitor``, the
CLI's ``--backend`` flag).
"""

from __future__ import annotations

from typing import Optional

from repro.monitor.backends.base import ZoneBackend
from repro.monitor.backends.bdd import BDDZoneBackend
from repro.monitor.backends.bitset import BitsetZoneBackend

_BACKENDS = {
    BDDZoneBackend.name: BDDZoneBackend,
    BitsetZoneBackend.name: BitsetZoneBackend,
}

DEFAULT_BACKEND = BDDZoneBackend.name


def available_backends() -> list:
    """Sorted registry keys accepted by :func:`make_backend`."""
    return sorted(_BACKENDS)


def make_backend(
    name: str,
    num_vars: int,
    manager: Optional[object] = None,
    indexed: bool = False,
) -> ZoneBackend:
    """Instantiate a zone backend by registry key.

    ``manager`` (a :class:`~repro.bdd.manager.BDDManager`) is forwarded to
    the BDD backend so one monitor's zones can share a node table; other
    backends reject it.  ``indexed=True`` arms the bitset backend's
    multi-index Hamming pruner (sub-linear γ queries); other backends
    reject it.
    """
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown zone backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    if cls is BDDZoneBackend:
        if indexed:
            raise ValueError(
                "indexed pruning is only available on the bitset backend"
            )
        return cls(num_vars, manager=manager)
    if manager is not None:
        raise ValueError(f"backend {name!r} does not accept a shared BDD manager")
    return cls(num_vars, indexed=indexed)


__all__ = [
    "ZoneBackend",
    "BDDZoneBackend",
    "BitsetZoneBackend",
    "available_backends",
    "make_backend",
    "DEFAULT_BACKEND",
]
