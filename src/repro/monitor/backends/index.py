"""Multi-index Hamming pruning for the bitset zone backend.

The brute bitset kernel answers ``contains(q, γ)`` by scanning all M
stored patterns — O(M·W) words per query.  This module makes the verdict
sub-linear in M for the common case (clustered visited sets, small γ)
with two exact pruning stages in front of the XOR/popcount kernel:

**Stage 1 — γ+1 band lookups (pigeonhole).**  The ``num_vars`` bit
positions are partitioned into γ+1 contiguous bands.  If a stored pattern
``p`` is within Hamming distance γ of a query ``q``, the ≤ γ differing
bits touch at most γ bands, so ``p`` and ``q`` agree *exactly* on at
least one band.  Stored patterns are sorted per band by band value, so
every query's candidate bucket per band is one ``searchsorted`` range;
the candidate set is the union over bands.  Patterns outside the union
are *provably* farther than γ — dropping them cannot change the verdict.

**Stage 2 — class-prototype triangle-inequality triage.**  With
``proto`` the majority-vote pattern of the zone and precomputed
``d(p, proto)`` for every stored ``p``, the triangle inequality gives
``d(q, p) >= |d(q, proto) - d(p, proto)|``: candidates outside the ring
``[d(q, proto) - γ, d(q, proto) + γ]`` are discarded, and queries whose
ring is empty over the *whole* zone are rejected before any band lookup
(one vectorized ``searchsorted`` pair for the entire batch).

Only the surviving shortlist reaches the exact kernel, so verdicts are
bit-identical to the brute scan by construction — the property suite
(``tests/test_index_pruning.py``) drives this against the brute bitset
and BDD engines, including adversarial band-collision families.

Indices are snapshots of the stored-word matrix, built lazily per γ on
first query.  Incremental inserts no longer drop them: :meth:`merge`
absorbs freshly appended rows into each band's pre-sorted order (one
``searchsorted`` + linear scatter per band, mirroring the backend's
sorted-dedup merge) and extends the prototype-distance ring the same
way, so high-frequency fleet merges keep a hot index.  The prototype
itself is *frozen* at build time — any fixed reference pattern keeps the
triangle-inequality triage exact, staleness only costs pruning power —
and once the merged rows outnumber the rows the index was built over,
:meth:`merge` declines and the backend rebuilds (refreshing the
prototype).  See
:class:`~repro.monitor.backends.bitset.BitsetZoneBackend.add_patterns`.
"""
# lint: hot-path

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.monitor.backends.bitset import _popcount_words, merge_sorted_pair


def _pack_band(bits: np.ndarray) -> np.ndarray:
    """``(N, k)`` 0/1 band slices -> ``(N,)`` hash/sort-able void values."""
    packed = np.packbits(bits, axis=1)
    return np.ascontiguousarray(packed).view(
        np.dtype((np.void, packed.shape[1]))
    ).ravel()


class MultiIndexHammingIndex:
    """Immutable γ-specific pruning index over packed pattern words.

    Parameters
    ----------
    words:
        The backend's ``(M, W)`` uint64 stored-pattern matrix.  The index
        keeps a reference (not a copy); the owning backend must discard
        the index whenever the matrix changes.
    num_vars:
        Number of pattern bits (trailing word bits are zero padding).
    gamma:
        The query radius the index serves.  Band count is ``gamma + 1``,
        so ``gamma + 1 <= num_vars`` is required for the pigeonhole
        argument to hold (each band must contain at least one bit).
    """

    def __init__(self, words: np.ndarray, num_vars: int, gamma: int):
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        if gamma + 1 > num_vars:
            raise ValueError(
                f"cannot split {num_vars} bits into {gamma + 1} non-empty "
                "bands; the pigeonhole guarantee needs gamma + 1 <= num_vars"
            )
        if not len(words):
            raise ValueError("cannot index an empty zone")
        self.gamma = gamma
        self.num_vars = num_vars
        self.num_bands = gamma + 1
        self._words = words
        m, row_words = words.shape

        bits = np.unpackbits(words.view(np.uint8), axis=1)[:, :num_vars]
        # linspace with num_bands <= num_vars steps by >= 1 bit, so the
        # integer boundaries are strictly increasing: every band non-empty.
        self._bounds = np.linspace(0, num_vars, self.num_bands + 1).astype(np.int64)
        self._band_sorted: List[np.ndarray] = []
        self._band_order: List[np.ndarray] = []
        for b in range(self.num_bands):
            values = _pack_band(bits[:, self._bounds[b] : self._bounds[b + 1]])
            order = np.argsort(values, kind="stable")
            self._band_order.append(order)
            self._band_sorted.append(values[order])

        # Prototype triage: majority-vote pattern + per-row distances.
        proto_bits = (bits.mean(axis=0) >= 0.5).astype(np.uint8)
        packed = np.packbits(proto_bits[None, :], axis=1)
        pad = row_words * 8 - packed.shape[1]
        if pad:
            packed = np.pad(packed, ((0, 0), (0, pad)))
        self._proto = np.ascontiguousarray(packed).view(np.uint64)
        self._proto_dists = _popcount_words(words ^ self._proto).sum(
            axis=1, dtype=np.int64
        )
        self._proto_sorted = np.sort(self._proto_dists)

        # Cumulative query counters (feed backend statistics / benches).
        self.queries = 0
        self.ring_rejected = 0
        self.candidates_scanned = 0
        # Incremental-merge bookkeeping: rows present at build time bound
        # how much prototype staleness merge() tolerates.
        self._built_rows = m
        self.merged_batches = 0
        self.merged_rows = 0

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def merge(self, words: np.ndarray, start: int) -> bool:
        """Absorb rows ``words[start:]`` appended to the stored matrix.

        ``words`` is the backend's *new* ``(M, W)`` matrix whose first
        ``start`` rows are exactly the rows this index was built over
        (appends never reorder existing rows).  Each band's sorted order
        gains the new rows via one ``searchsorted`` + linear scatter, and
        the new rows' distances to the frozen prototype extend the ring
        arrays the same way — all exact, so verdicts stay bit-identical
        to a fresh build over the full matrix.

        Returns ``False`` (leaving the index untouched, for the caller
        to drop) when the cumulative merged rows would exceed the rows
        present at build time: past that point the frozen prototype is
        majority-voted by a minority and a rebuild recovers pruning
        power.
        """
        added = len(words) - start
        if added < 0:
            raise ValueError("merge expects the stored matrix to only grow")
        if added == 0:
            self._words = words
            return True
        if self.merged_rows + added > self._built_rows:
            return False
        bits = np.unpackbits(words[start:].view(np.uint8), axis=1)[:, : self.num_vars]
        new_ids = np.arange(start, len(words), dtype=np.int64)
        for b in range(self.num_bands):
            values = _pack_band(bits[:, self._bounds[b] : self._bounds[b + 1]])
            order = np.argsort(values, kind="stable")
            self._band_sorted[b], self._band_order[b] = merge_sorted_pair(
                self._band_sorted[b], values[order],
                self._band_order[b], new_ids[order],
            )
        new_dists = _popcount_words(words[start:] ^ self._proto).sum(
            axis=1, dtype=np.int64
        )
        self._proto_dists = np.concatenate([self._proto_dists, new_dists])
        self._proto_sorted, _ = merge_sorted_pair(
            self._proto_sorted, np.sort(new_dists)
        )
        self._words = words
        self.merged_batches += 1
        self.merged_rows += added
        return True

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def contains(self, qwords: np.ndarray) -> np.ndarray:
        """γ-membership verdict per packed query row — bit-identical to
        ``min_distances(q) <= gamma`` on the brute kernel."""
        return self.bounded_min_distances(qwords) <= self.gamma

    def bounded_min_distances(self, qwords: np.ndarray) -> np.ndarray:
        """``min(true_distance, γ+1)`` per packed query row.

        Sound by the same pigeonhole argument as :meth:`contains`: the
        band shortlist contains *every* stored pattern within distance γ
        of the query, so whenever the shortlist minimum is ≤ γ it equals
        the true minimum; when the shortlist is empty or its minimum
        exceeds γ, the true distance provably exceeds γ and the ``γ+1``
        sentinel is exact-bounded.  This is the engine behind the
        bitset backend's ``min_distances(patterns, cap=γ)``.
        """
        n = len(qwords)
        self.queries += n
        gamma = self.gamma
        out = np.full(n, gamma + 1, dtype=np.int64)
        if n == 0:
            return out
        words = self._words

        # Vectorized ring pre-filter: a query whose distance ring
        # [d(q,proto)-γ, d(q,proto)+γ] holds no stored pattern at all is
        # farther than γ from everything (triangle inequality).
        qd = _popcount_words(qwords ^ self._proto).sum(axis=1, dtype=np.int64)
        lo = np.searchsorted(self._proto_sorted, qd - gamma, side="left")
        hi = np.searchsorted(self._proto_sorted, qd + gamma, side="right")
        alive = np.flatnonzero(hi > lo)
        self.ring_rejected += n - len(alive)
        if not len(alive):
            return out

        # Band buckets for the surviving queries: one searchsorted pair
        # per band over the pre-sorted stored band values.
        qbits = np.unpackbits(qwords[alive].view(np.uint8), axis=1)[:, : self.num_vars]
        ranges = []
        for b in range(self.num_bands):
            qvals = _pack_band(qbits[:, self._bounds[b] : self._bounds[b + 1]])
            left = np.searchsorted(self._band_sorted[b], qvals, side="left")
            right = np.searchsorted(self._band_sorted[b], qvals, side="right")
            ranges.append((left, right))

        proto_dists = self._proto_dists
        single_word = words.shape[1] == 1
        zone_flat = words[:, 0] if single_word else None
        # lint: disable=hot-path-purity -- per-surviving-query bucket gather; inner work is searchsorted slices, loop bounded by ring survivors
        for k, i in enumerate(alive):
            buckets = [
                self._band_order[b][ranges[b][0][k] : ranges[b][1][k]]
                for b in range(self.num_bands)
                if ranges[b][1][k] > ranges[b][0][k]
            ]
            if not buckets:
                continue
            # Per-band buckets are disjoint-sorted but can overlap across
            # bands (a pattern agreeing on several bands); dedup so the
            # kernel scans each candidate once.
            cands = (
                buckets[0]
                if len(buckets) == 1
                else np.unique(np.concatenate(buckets))
            )
            # Stage-2 triage on the shortlist itself.
            cands = cands[np.abs(proto_dists[cands] - qd[i]) <= gamma]
            m = len(cands)
            if not m:
                continue
            self.candidates_scanned += m
            if single_word:
                dist = _popcount_words(qwords[i, 0] ^ zone_flat[cands]).min()
            else:
                dist = (
                    _popcount_words(qwords[i] ^ words[cands])
                    .sum(axis=1, dtype=np.int64)
                    .min()
                )
            if dist <= gamma:
                out[i] = dist
        return out

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, float]:
        """Index shape + cumulative pruning effectiveness counters."""
        m = len(self._words)
        band_bits = np.diff(self._bounds)
        scanned_fraction = (
            self.candidates_scanned / (self.queries * m) if self.queries else 0.0
        )
        return {
            "index_bands": self.num_bands,
            "index_min_band_bits": int(band_bits.min()),
            "index_queries": self.queries,
            "index_ring_rejected": self.ring_rejected,
            "index_scanned_fraction": scanned_fraction,
            "index_merged_batches": self.merged_batches,
            "index_merged_rows": self.merged_rows,
        }

    def __repr__(self) -> str:
        return (
            f"MultiIndexHammingIndex(patterns={len(self._words)}, "
            f"gamma={self.gamma}, bands={self.num_bands})"
        )
