"""Runtime neuron-activation-pattern monitoring — the paper's contribution.

Workflow (Fig. 1 of the paper)::

    # (a) after training, create the monitor from the training data
    monitor = NeuronActivationMonitor.build(model, spec.monitored_module,
                                            train_dataset, gamma=2)

    # choose the abstraction coarseness on validation data
    result = GammaCalibrator().calibrate(monitor, model,
                                         spec.monitored_module, val_dataset)

    # (b) in deployment, supplement every decision with a verdict
    guarded = MonitoredClassifier(model, spec.monitored_module, monitor)
    verdict = guarded.classify_one(image)
    if verdict.warning:
        ...  # decision not supported by training data
"""

from repro.monitor.patterns import (
    binarize,
    extract_patterns,
    hamming_distance,
    pack_patterns,
    unpack_patterns,
)
from repro.monitor.backends import (
    BDDZoneBackend,
    BitsetZoneBackend,
    ZoneBackend,
    available_backends,
    make_backend,
)
from repro.monitor.zone import ComfortZone
from repro.monitor.monitor import NeuronActivationMonitor
from repro.monitor.selection import (
    gradient_sensitivity,
    select_random_neurons,
    select_top_neurons,
    weight_sensitivity,
)
from repro.monitor.metrics import MonitorEvaluation, evaluate_monitor, evaluate_patterns
from repro.monitor.calibration import CalibrationResult, GammaCalibrator
from repro.monitor.runtime import MonitoredClassifier, Verdict
from repro.monitor.shift import (
    DistanceShiftDetector,
    DistanceShiftState,
    DistributionShiftDetector,
    ShiftState,
)
from repro.monitor.drift import (
    DriftResponder,
    StagingZone,
    ZoneSnapshot,
    partition_payloads,
)
from repro.monitor.boxes import BoxMonitor, BoxZone
from repro.monitor.detection import CellVerdict, DetectionMonitor

__all__ = [
    "binarize",
    "extract_patterns",
    "hamming_distance",
    "pack_patterns",
    "unpack_patterns",
    "ZoneBackend",
    "BDDZoneBackend",
    "BitsetZoneBackend",
    "available_backends",
    "make_backend",
    "ComfortZone",
    "NeuronActivationMonitor",
    "weight_sensitivity",
    "gradient_sensitivity",
    "select_top_neurons",
    "select_random_neurons",
    "MonitorEvaluation",
    "evaluate_monitor",
    "evaluate_patterns",
    "GammaCalibrator",
    "CalibrationResult",
    "MonitoredClassifier",
    "Verdict",
    "DistributionShiftDetector",
    "ShiftState",
    "DistanceShiftDetector",
    "DistanceShiftState",
    "DriftResponder",
    "StagingZone",
    "ZoneSnapshot",
    "partition_payloads",
    "BoxMonitor",
    "BoxZone",
    "DetectionMonitor",
    "CellVerdict",
]
