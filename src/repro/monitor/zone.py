"""γ-comfort zones (Definition 2), backed by a pluggable engine.

``Z^0_c`` is the set of activation patterns of all correctly-classified
training images of class ``c``; ``Z^γ_c`` adds every pattern within Hamming
distance γ.  The zone delegates storage and queries to a
:class:`~repro.monitor.backends.base.ZoneBackend` — the canonical BDD of
the paper (existential-quantification enlargement, Algorithm 1 lines 9-14)
or the vectorized bitset engine (direct XOR/popcount distance) — both of
which produce identical verdicts.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence, Union

import numpy as np

from repro.bdd import BDDManager
from repro.monitor.backends import DEFAULT_BACKEND, ZoneBackend, make_backend
from repro.monitor.patterns import pack_patterns, unpack_patterns


class ComfortZone:
    """The comfort zone of one class over the monitored neurons.

    Parameters
    ----------
    num_neurons:
        Width of the monitored pattern.
    gamma:
        Hamming-distance enlargement radius.
    manager:
        Optionally share one :class:`BDDManager` across zones (the
        per-class monitors of one network share variables).  Only valid
        with the BDD backend.
    backend:
        Registry key (``"bdd"`` or ``"bitset"``) or a ready-made
        :class:`ZoneBackend` instance.
    indexed:
        Arm the bitset backend's multi-index Hamming pruner (sub-linear
        γ queries over large visited sets).  Bitset-only.
    """

    def __init__(
        self,
        num_neurons: int,
        gamma: int = 0,
        manager: Optional[BDDManager] = None,
        backend: Union[str, ZoneBackend] = DEFAULT_BACKEND,
        indexed: bool = False,
    ):
        if num_neurons <= 0:
            raise ValueError(f"num_neurons must be positive, got {num_neurons}")
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        self.num_neurons = num_neurons
        self.gamma = gamma
        if isinstance(backend, ZoneBackend):
            if backend.num_vars != num_neurons:
                raise ValueError(
                    f"backend has {backend.num_vars} variables, need {num_neurons}"
                )
            if manager is not None:
                raise ValueError("pass either a backend instance or a manager, not both")
            if indexed:
                raise ValueError(
                    "pass either a backend instance or indexed=, not both"
                )
            self.backend = backend
        else:
            self.backend = make_backend(
                backend, num_neurons, manager=manager, indexed=indexed
            )
        #: Optional durability write-through: called with the ``(K,
        #: row_bytes)`` bit-packed rows that were *new* to ``Z^0`` after
        #: every successful insert (see :meth:`attach_sink`).
        self._sink: Optional[Callable[[np.ndarray], None]] = None

    @property
    def num_visited_patterns(self) -> int:
        """Number of *distinct* visited patterns (``|Z^0|``).

        Delegated to the backend's dedup count: every backend collapses
        duplicate inserts, so a counter incremented by raw insert count
        would disagree with :meth:`ZoneBackend.visited_patterns` and
        silently change across a save/load round-trip.
        """
        return self.backend.num_visited()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_pattern(self, pattern: Sequence[int]) -> None:
        """Record one visited activation pattern (Algorithm 1, line 6)."""
        self.add_patterns(np.asarray(pattern, dtype=np.uint8).reshape(1, -1))

    def add_patterns(self, patterns: Iterable[Sequence[int]]) -> None:
        """Record many visited patterns in one bulk insert."""
        if not isinstance(patterns, np.ndarray):
            patterns = np.asarray(list(patterns), dtype=np.uint8)
        if patterns.size == 0:
            return
        patterns = np.atleast_2d(patterns)
        fresh = self._fresh_rows(patterns) if self._sink is not None else None
        self.backend.add_patterns(patterns)
        if fresh is not None and len(fresh):
            self._sink(fresh)

    @property
    def row_bytes(self) -> int:
        """Bytes per bit-packed pattern row (``pack_patterns`` width)."""
        return (self.num_neurons + 7) // 8

    def add_packed(
        self, packed: np.ndarray, assume_sorted_unique: bool = False
    ) -> None:
        """Bulk-insert ``(N, row_bytes)`` bit-packed rows.

        The cold-start fast path: the zone store and portable payloads
        carry patterns in ``pack_patterns`` form, and the bitset backend
        ingests that form directly (no unpack/re-pack round trip).
        ``assume_sorted_unique`` forwards the compacted-segment hint —
        rows already deduplicated in ``np.unique(axis=0)`` order — which
        the bitset backend verifies and then ingests sort-free.
        Backends without native packed ingestion fall back to
        :meth:`add_patterns` on the unpacked rows.
        """
        packed = np.ascontiguousarray(np.atleast_2d(packed), dtype=np.uint8)
        if packed.size == 0:
            return
        if packed.shape[1] != self.row_bytes:
            raise ValueError(
                f"packed rows have {packed.shape[1]} bytes, "
                f"expected {self.row_bytes}"
            )
        if hasattr(self.backend, "add_packed"):
            fresh = self.backend.add_packed(
                packed, assume_sorted_unique=assume_sorted_unique
            )
            if self._sink is not None and len(fresh):
                self._sink(fresh)
            return
        patterns = unpack_patterns(packed, self.num_neurons)
        self.add_patterns(patterns)

    def _fresh_rows(self, patterns: np.ndarray) -> np.ndarray:
        """Bit-packed rows of *patterns* not yet in ``Z^0`` (deduplicated)."""
        packed = pack_patterns(np.asarray(patterns, dtype=np.uint8))
        uniq, first = np.unique(packed, axis=0, return_index=True)
        member = self.backend.contains_batch(np.atleast_2d(patterns)[first], 0)
        return uniq[~member]

    def attach_sink(self, sink: Optional[Callable[[np.ndarray], None]]) -> None:
        """Register (or clear) the durability write-through.

        After every successful insert the sink receives the bit-packed
        rows that were new to the visited set — exactly the rows a WAL
        must replay to rebuild this zone.  Emission happens *after* the
        backend accepted the rows, so a rejected insert (bad bits) never
        reaches the log, and a crash between the two loses only what the
        process itself lost.
        """
        self._sink = sink

    def set_gamma(self, gamma: int) -> None:
        """Change the enlargement radius (a pure query parameter now)."""
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        self.gamma = gamma

    def enlarge(self) -> None:
        """Increase γ by one (used by the calibration loop)."""
        self.set_gamma(self.gamma + 1)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def manager(self) -> Optional[BDDManager]:
        """The shared BDD manager (``None`` for non-BDD backends)."""
        return getattr(self.backend, "manager", None)

    @property
    def zone_ref(self) -> int:
        """BDD ref of ``Z^γ`` (BDD backend only)."""
        return self.backend.zone_ref(self.gamma)

    @property
    def visited_ref(self) -> int:
        """BDD ref of ``Z^0`` (BDD backend only)."""
        return self.backend.visited_ref

    def contains(self, pattern: Sequence[int]) -> bool:
        """Membership in ``Z^γ`` — the runtime monitor query."""
        return self.backend.contains(pattern, self.gamma)

    def contains_batch(self, patterns: np.ndarray) -> np.ndarray:
        """Vectorised membership for a ``(N, d)`` pattern array."""
        return self.backend.contains_batch(patterns, self.gamma)

    def min_distances(
        self, patterns: np.ndarray, cap: Optional[int] = None
    ) -> np.ndarray:
        """Exact per-row Hamming distance to ``Z^0`` (γ-independent).

        ``cap=k`` bounds the answer: exact distance when ≤ k, else
        ``k + 1`` — cheaper on every backend (see
        :meth:`ZoneBackend.min_distances`)."""
        return self.backend.min_distances(patterns, cap=cap)

    def is_empty(self) -> bool:
        """True when no pattern was ever added."""
        return self.backend.is_empty()

    def size(self) -> int:
        """Exact number of patterns in ``Z^γ``."""
        return self.backend.size(self.gamma)

    def statistics(self) -> Dict[str, float]:
        """Zone statistics (pattern count, density, engine internals)."""
        stats = self.backend.statistics(self.gamma)
        stats["gamma"] = self.gamma
        return stats

    def engine_stats(self) -> Optional[Dict[str, float]]:
        """BDD engine counters (``None`` on non-BDD backends): node and
        unique-table sizes, GC collections, reorder count, cache hit
        rates — the observability face of the complement-edge engine."""
        manager = self.manager
        return manager.cache_stats() if manager is not None else None

    def reorder(self, method: str = "sift", **kwargs) -> Optional[Dict[str, int]]:
        """Sift the BDD variable order in place (``None`` on non-BDD).

        The backend pins ``Z^0`` and every cached ``Z^γ`` as GC roots,
        so verdicts and distances are bit-identical across the reorder —
        only the diagram's size changes."""
        if not hasattr(self.backend, "reorder"):
            return None
        return self.backend.reorder(method=method, **kwargs)

    def __repr__(self) -> str:
        return (
            f"ComfortZone(neurons={self.num_neurons}, gamma={self.gamma}, "
            f"visited={self.num_visited_patterns}, backend={self.backend.name!r})"
        )
