"""γ-comfort zones (Definition 2), stored as BDDs.

``Z^0_c`` is the set of activation patterns of all correctly-classified
training images of class ``c``; ``Z^γ_c`` adds every pattern within Hamming
distance γ, computed with the existential-quantification trick of
Algorithm 1 (lines 9-14).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.bdd import BDDManager, zone_statistics
from repro.bdd.analysis import sat_count


class ComfortZone:
    """The comfort zone of one class over the monitored neurons.

    Construction follows Algorithm 1: visited patterns are encoded as BDD
    cubes and OR-ed into ``Z^0``; γ expansion steps enlarge the zone by
    Hamming distance 1 each, via per-variable existential quantification.

    Parameters
    ----------
    num_neurons:
        Width of the monitored pattern (BDD variable count).
    gamma:
        Hamming-distance enlargement radius.
    manager:
        Optionally share one :class:`BDDManager` across zones (the
        per-class monitors of one network share variables).
    """

    def __init__(
        self,
        num_neurons: int,
        gamma: int = 0,
        manager: Optional[BDDManager] = None,
    ):
        if num_neurons <= 0:
            raise ValueError(f"num_neurons must be positive, got {num_neurons}")
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        if manager is not None and manager.num_vars != num_neurons:
            raise ValueError(
                f"shared manager has {manager.num_vars} variables, need {num_neurons}"
            )
        self.num_neurons = num_neurons
        self.gamma = gamma
        self.manager = manager if manager is not None else BDDManager(num_neurons)
        self._visited = self.manager.empty_set()   # Z^0
        self._zone = self.manager.empty_set()      # Z^gamma
        self._dirty = False
        self.num_visited_patterns = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_pattern(self, pattern: Sequence[int]) -> None:
        """Record one visited activation pattern (Algorithm 1, line 6)."""
        cube = self.manager.from_pattern(pattern)
        self._visited = self.manager.apply_or(self._visited, cube)
        self.num_visited_patterns += 1
        self._dirty = True

    def add_patterns(self, patterns: Iterable[Sequence[int]]) -> None:
        """Record many visited patterns."""
        for pattern in patterns:
            self.add_pattern(pattern)

    def _rebuild(self) -> None:
        self._zone = self.manager.hamming_ball(self._visited, self.gamma)
        self._dirty = False

    def set_gamma(self, gamma: int) -> None:
        """Change the enlargement radius (zone is lazily recomputed)."""
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        if gamma != self.gamma:
            self.gamma = gamma
            self._dirty = True

    def enlarge(self) -> None:
        """Increase γ by one (used by the calibration loop)."""
        self.set_gamma(self.gamma + 1)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def zone_ref(self) -> int:
        """BDD ref of ``Z^γ`` (rebuilt on demand)."""
        if self._dirty:
            self._rebuild()
        return self._zone

    @property
    def visited_ref(self) -> int:
        """BDD ref of ``Z^0`` (the raw visited set)."""
        return self._visited

    def contains(self, pattern: Sequence[int]) -> bool:
        """Membership in ``Z^γ`` — the runtime monitor query.

        Linear in the number of monitored neurons, per the BDD guarantee
        the paper highlights.
        """
        return self.manager.contains(self.zone_ref, pattern)

    def contains_batch(self, patterns: np.ndarray) -> np.ndarray:
        """Vectorised membership for a ``(N, d)`` pattern array."""
        ref = self.zone_ref
        return np.fromiter(
            (self.manager.contains(ref, row) for row in patterns),
            dtype=bool,
            count=len(patterns),
        )

    def is_empty(self) -> bool:
        """True when no pattern was ever added."""
        return self._visited == self.manager.empty_set()

    def size(self) -> int:
        """Exact number of patterns in ``Z^γ``."""
        return sat_count(self.manager, self.zone_ref)

    def statistics(self) -> Dict[str, float]:
        """Zone statistics (pattern count, node count, density, support)."""
        stats = zone_statistics(self.manager, self.zone_ref)
        stats["gamma"] = self.gamma
        stats["visited_patterns"] = sat_count(self.manager, self._visited)
        return stats

    def __repr__(self) -> str:
        return (
            f"ComfortZone(neurons={self.num_neurons}, gamma={self.gamma}, "
            f"visited={self.num_visited_patterns})"
        )
