"""Neuron activation patterns (Definition 1 of the paper).

A pattern is the elementwise binarisation of a ReLU layer's output:
``prelu(x) = 1 if x > 0 else 0``.  These helpers extract patterns for whole
datasets in one batched forward sweep through the network, using a forward
hook on the monitored module.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.hooks import ActivationTap
from repro.nn.layers import Module
from repro.nn.tensor import Tensor


def binarize(activations: np.ndarray) -> np.ndarray:
    """Apply ``prelu`` elementwise: strictly positive becomes 1, else 0.

    Accepts any shape; trailing dimensions are flattened so convolutional
    feature maps become flat patterns (the paper treats convolutional layers
    as fully-connected ones with zero weights for missing connections).
    """
    flat = activations.reshape(activations.shape[0], -1)
    return (flat > 0).astype(np.uint8)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamming distance between pattern arrays (broadcasting rows).

    ``a`` may be ``(N, d)`` and ``b`` ``(d,)`` or ``(N, d)``; returns the
    per-row distance.
    """
    return np.asarray(a != b).sum(axis=-1)


def infer_pattern_width(model: Module, monitored_module: Module) -> int:
    """Best-effort flat pattern width of ``monitored_module``, without a
    forward pass.

    Activationless modules (ReLU, the usual monitoring point) take the
    width of the closest preceding layer with a declared ``out_features``
    in their enclosing ``Sequential``.  Returns 0 when nothing declares a
    width (empty-input extraction then yields ``(0, 0)`` patterns).
    """
    def declared(module: Module) -> int:
        width = getattr(module, "out_features", None)
        return int(width) if isinstance(width, int) else 0

    width = declared(monitored_module)
    if width:
        return width
    for container in model.modules():
        layers = getattr(container, "layers", None)
        if not isinstance(layers, list):
            continue
        for index, layer in enumerate(layers):
            if layer is monitored_module:
                for previous in reversed(layers[:index]):
                    width = declared(previous)
                    if width:
                        return width
    return 0


def extract_patterns(
    model: Module,
    monitored_module: Module,
    inputs: np.ndarray,
    batch_size: int = 256,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run ``inputs`` through ``model`` and collect patterns plus logits.

    Zero-length inputs run no forward pass; the pattern matrix is then
    ``(0, d)`` with ``d`` taken from :func:`infer_pattern_width` and the
    logits ``(0, 1)`` (so ``argmax(axis=1)`` stays well-defined).

    Returns
    -------
    patterns:
        ``(N, d)`` uint8 binarised activations of the monitored module.
    logits:
        ``(N, C)`` raw network outputs, for deciding ``dec(in)``.
    """
    if len(inputs) == 0:
        width = infer_pattern_width(model, monitored_module)
        return np.zeros((0, width), dtype=np.uint8), np.zeros((0, 1))
    model.eval()
    logits_chunks = []
    with ActivationTap(monitored_module) as tap:
        for start in range(0, len(inputs), batch_size):
            batch = Tensor(inputs[start : start + batch_size])
            logits_chunks.append(model(batch).data)
    activations = tap.concatenated()
    logits = np.concatenate(logits_chunks, axis=0)
    return binarize(activations), logits


def pack_patterns(patterns: np.ndarray) -> np.ndarray:
    """Pack a ``(N, d)`` 0/1 array into bytes for compact storage."""
    if patterns.ndim != 2:
        raise ValueError(f"expected (N, d) patterns, got shape {patterns.shape}")
    return np.packbits(patterns.astype(np.uint8), axis=1)


def unpack_patterns(packed: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`pack_patterns` given the original pattern width."""
    if packed.ndim != 2:
        raise ValueError(f"expected (N, B) packed array, got shape {packed.shape}")
    unpacked = np.unpackbits(packed, axis=1)
    if unpacked.shape[1] < width:
        raise ValueError(
            f"packed rows hold only {unpacked.shape[1]} bits, need {width}"
        )
    return unpacked[:, :width]
