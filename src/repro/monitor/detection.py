"""Monitoring grid-based object detectors (paper §V, extension 1).

The paper notes the technique applies directly to YOLO-style networks: the
image is partitioned into a grid, each cell offers a proposal.  Here every
grid cell's decision is checked against a per-(cell, class) comfort zone
built over the *shared* monitored trunk layer: during monitor construction,
the trunk pattern of each training image is recorded once per cell under
that cell's correctly-predicted class.

The per-decision verdict mirrors the classification monitor: a cell's
proposal is flagged when the trunk pattern was never seen (within Hamming
distance γ) for that (cell, class) pair during training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.monitor.backends import DEFAULT_BACKEND
from repro.monitor.monitor import NeuronActivationMonitor
from repro.monitor.patterns import binarize
from repro.nn.hooks import ActivationTap
from repro.nn.layers import Module
from repro.nn.tensor import Tensor


@dataclass
class CellVerdict:
    """Monitor verdict for one grid cell of one scene."""

    cell: int
    predicted_class: int
    supported: bool

    @property
    def warning(self) -> bool:
        return not self.supported


class DetectionMonitor:
    """Per-cell activation monitors over a shared trunk layer."""

    def __init__(self, num_cells: int, monitors: Dict[int, NeuronActivationMonitor]):
        if num_cells <= 0:
            raise ValueError(f"num_cells must be positive, got {num_cells}")
        if set(monitors) != set(range(num_cells)):
            raise ValueError("monitors must cover exactly cells 0..num_cells-1")
        self.num_cells = num_cells
        self.monitors = monitors

    @classmethod
    def build(
        cls,
        model: Module,
        monitored_module: Module,
        inputs: np.ndarray,
        cell_labels: np.ndarray,
        gamma: int = 0,
        batch_size: int = 64,
        backend: str = DEFAULT_BACKEND,
    ) -> "DetectionMonitor":
        """Algorithm 1 per grid cell.

        ``cell_labels`` has shape ``(N, ...)`` flattening to ``(N, K)`` for
        K cells; the model must emit ``(N, K, C)`` logits.  ``backend``
        selects the zone engine for every cell monitor.
        """
        patterns, logits = _extract_detection(
            model, monitored_module, inputs, batch_size
        )
        n, k, _ = logits.shape
        flat_labels = cell_labels.reshape(n, -1)
        if flat_labels.shape[1] != k:
            raise ValueError(
                f"cell_labels flatten to {flat_labels.shape[1]} cells, model has {k}"
            )
        predictions = logits.argmax(axis=2)
        monitors: Dict[int, NeuronActivationMonitor] = {}
        for cell in range(k):
            classes = np.unique(flat_labels[:, cell]).tolist()
            monitor = NeuronActivationMonitor(
                layer_width=patterns.shape[1], classes=classes, gamma=gamma,
                backend=backend,
            )
            monitor.record(patterns, flat_labels[:, cell], predictions[:, cell])
            monitors[cell] = monitor
        return cls(num_cells=k, monitors=monitors)

    def set_gamma(self, gamma: int) -> None:
        """Change γ on every cell monitor."""
        for monitor in self.monitors.values():
            monitor.set_gamma(gamma)

    def check_scene(
        self,
        model: Module,
        monitored_module: Module,
        scenes: np.ndarray,
        batch_size: int = 64,
    ) -> List[List[CellVerdict]]:
        """Verdicts for every cell of every scene in a batch."""
        patterns, logits = _extract_detection(
            model, monitored_module, scenes, batch_size
        )
        predictions = logits.argmax(axis=2)
        results: List[List[CellVerdict]] = []
        for i in range(len(scenes)):
            scene_verdicts = []
            for cell in range(self.num_cells):
                monitor = self.monitors[cell]
                predicted = int(predictions[i, cell])
                if monitor.monitors_class(predicted):
                    supported = bool(
                        monitor.check(patterns[i : i + 1], np.array([predicted]))[0]
                    )
                else:
                    # A class never predicted correctly in training for this
                    # cell: by definition unsupported.
                    supported = False
                scene_verdicts.append(
                    CellVerdict(cell=cell, predicted_class=predicted, supported=supported)
                )
            results.append(scene_verdicts)
        return results

    def evaluate(
        self,
        model: Module,
        monitored_module: Module,
        scenes: np.ndarray,
        cell_labels: np.ndarray,
        batch_size: int = 64,
    ) -> Dict[str, float]:
        """Aggregate Table II-style metrics over all cells of all scenes."""
        patterns, logits = _extract_detection(
            model, monitored_module, scenes, batch_size
        )
        predictions = logits.argmax(axis=2)
        flat_labels = cell_labels.reshape(len(scenes), -1)
        total = out_of_pattern = misclassified = oop_misclassified = 0
        for cell in range(self.num_cells):
            monitor = self.monitors[cell]
            preds = predictions[:, cell]
            labels = flat_labels[:, cell]
            monitored_mask = np.isin(preds, monitor.classes)
            supported = np.zeros(len(preds), dtype=bool)
            if monitored_mask.any():
                supported[monitored_mask] = monitor.check(
                    patterns[monitored_mask], preds[monitored_mask]
                )
            wrong = preds != labels
            total += len(preds)
            out_of_pattern += int((~supported).sum())
            misclassified += int(wrong.sum())
            oop_misclassified += int((~supported & wrong).sum())
        return {
            "total_cells": total,
            "misclassification_rate": misclassified / total if total else 0.0,
            "out_of_pattern_rate": out_of_pattern / total if total else 0.0,
            "misclassified_within_oop": (
                oop_misclassified / out_of_pattern if out_of_pattern else 0.0
            ),
        }


def _extract_detection(
    model: Module, monitored_module: Module, inputs: np.ndarray, batch_size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Trunk patterns plus (N, K, C) logits for a scene batch."""
    model.eval()
    logits_chunks = []
    with ActivationTap(monitored_module) as tap:
        for start in range(0, len(inputs), batch_size):
            batch = Tensor(inputs[start : start + batch_size])
            logits_chunks.append(model(batch).data)
    activations = tap.concatenated()
    logits = np.concatenate(logits_chunks, axis=0)
    if logits.ndim != 3:
        raise ValueError(
            f"detection model must emit (N, K, C) logits, got shape {logits.shape}"
        )
    return binarize(activations), logits
