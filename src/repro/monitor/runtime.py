"""Deployment-time wrapper: classification plus monitor verdict (Fig. 1-b).

:class:`MonitoredClassifier` bundles a trained network with its activation
monitor.  Every classification returns a :class:`Verdict` carrying the
predicted class, the softmax confidence and the monitor's judgement —
``supported=False`` reproduces the paper's "problematic decision!" warning:
the decision is not backed by any similar training-time activation pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.monitor.backends import DEFAULT_BACKEND
from repro.monitor.monitor import NeuronActivationMonitor
from repro.monitor.patterns import extract_patterns
from repro.nn import functional as F
from repro.nn.layers import Module


@dataclass(frozen=True)
class Verdict:
    """Outcome of one monitored classification."""

    predicted_class: int
    confidence: float
    supported: bool
    monitored: bool

    @property
    def warning(self) -> bool:
        """True when the monitor flags the decision as out-of-pattern."""
        return self.monitored and not self.supported


class MonitoredClassifier:
    """A classifier whose decisions are supervised by an activation monitor.

    Parameters
    ----------
    model, monitored_module:
        The trained network and its monitored ReLU layer.
    monitor:
        A built :class:`~repro.monitor.monitor.NeuronActivationMonitor`.
    unmonitored_ok:
        Verdicts for classes outside the monitor's coverage report
        ``supported=True`` and ``monitored=False`` (the monitor simply has
        no opinion, as with non-stop-sign classes in the paper's GTSRB
        experiment).
    """

    def __init__(
        self,
        model: Module,
        monitored_module: Module,
        monitor: NeuronActivationMonitor,
    ):
        self.model = model
        self.monitored_module = monitored_module
        self.monitor = monitor

    @classmethod
    def build(
        cls,
        model: Module,
        monitored_module: Module,
        train_dataset,
        gamma: int = 0,
        backend: str = DEFAULT_BACKEND,
        **monitor_kwargs,
    ) -> "MonitoredClassifier":
        """Build the monitor (Algorithm 1) and wrap the model in one call.

        ``backend`` selects the comfort-zone engine (``"bdd"`` or
        ``"bitset"``); remaining keyword arguments are forwarded to
        :meth:`NeuronActivationMonitor.build`.
        """
        monitor = NeuronActivationMonitor.build(
            model, monitored_module, train_dataset,
            gamma=gamma, backend=backend, **monitor_kwargs,
        )
        return cls(model, monitored_module, monitor)

    @property
    def backend_name(self) -> str:
        """The zone engine serving this classifier's monitor."""
        return self.monitor.backend_name

    def classify(self, inputs: np.ndarray, batch_size: int = 256) -> List[Verdict]:
        """Classify a batch and attach a monitor verdict to each decision."""
        inputs = np.asarray(inputs)
        if len(inputs) == 0:
            return []
        patterns, logits = extract_patterns(
            self.model, self.monitored_module, inputs, batch_size
        )
        predictions = logits.argmax(axis=1)
        confidences = F.softmax(logits, axis=1).max(axis=1)
        monitored_mask = np.isin(predictions, self.monitor.classes)
        supported = np.ones(len(inputs), dtype=bool)
        if monitored_mask.any():
            supported[monitored_mask] = self.monitor.check(
                patterns[monitored_mask], predictions[monitored_mask]
            )
        return [
            Verdict(
                predicted_class=int(predictions[i]),
                confidence=float(confidences[i]),
                supported=bool(supported[i]),
                monitored=bool(monitored_mask[i]),
            )
            for i in range(len(inputs))
        ]

    def classify_one(self, single_input: np.ndarray) -> Verdict:
        """Convenience wrapper for a single example (no batch axis)."""
        return self.classify(np.asarray(single_input)[None])[0]

    def warning_rate(self, inputs: np.ndarray, batch_size: int = 256) -> float:
        """Fraction of decisions flagged out-of-pattern on a batch."""
        verdicts = self.classify(inputs, batch_size)
        if not verdicts:
            return 0.0
        return sum(v.warning for v in verdicts) / len(verdicts)
