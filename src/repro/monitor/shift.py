"""Distribution-shift detection from the stream of monitor verdicts.

The paper (§I) observes that "the frequent appearance of unseen patterns
provides an indicator of data distribution shift to the development team".
:class:`DistributionShiftDetector` operationalises that: it maintains a
sliding window over the binary out-of-pattern stream and raises an alarm
when the windowed rate significantly exceeds the rate calibrated on
validation data (a one-sided binomial z-test), with an optional CUSUM
accumulator for slowly drifting shifts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

import numpy as np


@dataclass
class ShiftState:
    """Snapshot of the detector after one update."""

    samples_seen: int
    window_rate: float
    z_score: float
    cusum: float
    alarm: bool


class DistributionShiftDetector:
    """Windowed out-of-pattern-rate alarm.

    Parameters
    ----------
    baseline_rate:
        Expected out-of-pattern rate without shift (from the γ calibration
        on validation data, e.g. 0.6% for MNIST at γ=2).
    window:
        Sliding window length (number of recent decisions considered).
    z_threshold:
        One-sided z-score above which the windowed rate is declared
        significantly higher than baseline.
    cusum_slack, cusum_threshold:
        The CUSUM accumulates ``(x - baseline - slack)`` per observation and
        alarms when it exceeds the threshold; catches slow drifts that never
        spike a single window.
    """

    def __init__(
        self,
        baseline_rate: float,
        window: int = 200,
        z_threshold: float = 3.0,
        cusum_slack: float = 0.02,
        cusum_threshold: float = 8.0,
    ):
        if not 0.0 <= baseline_rate < 1.0:
            raise ValueError(f"baseline_rate must be in [0, 1), got {baseline_rate}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.baseline_rate = baseline_rate
        self.window = window
        self.z_threshold = z_threshold
        self.cusum_slack = cusum_slack
        self.cusum_threshold = cusum_threshold
        self._buffer: Deque[bool] = deque(maxlen=window)
        self._cusum = 0.0
        self._seen = 0

    def update(self, out_of_pattern: bool) -> ShiftState:
        """Feed one monitor verdict; returns the current detector state."""
        self._buffer.append(bool(out_of_pattern))
        self._seen += 1
        self._cusum = max(
            0.0,
            self._cusum + (float(out_of_pattern) - self.baseline_rate - self.cusum_slack),
        )
        n = len(self._buffer)
        rate = sum(self._buffer) / n
        # One-sided z-test of the windowed rate against the baseline.
        std = np.sqrt(max(self.baseline_rate * (1.0 - self.baseline_rate), 1e-12) / n)
        z = (rate - self.baseline_rate) / std
        # The z-test waits for a full window: partial-window estimates are
        # too noisy and would fire spuriously during warm-up.
        alarm = (n >= self.window and z >= self.z_threshold) or (
            self._cusum >= self.cusum_threshold
        )
        return ShiftState(
            samples_seen=self._seen,
            window_rate=rate,
            z_score=float(z),
            cusum=self._cusum,
            alarm=bool(alarm),
        )

    def update_many(self, flags: Iterable[bool]) -> List[ShiftState]:
        """Feed a sequence of verdicts; returns the state after each."""
        return [self.update(flag) for flag in flags]

    def reset(self) -> None:
        """Clear the window and the CUSUM accumulator."""
        self._buffer.clear()
        self._cusum = 0.0
        self._seen = 0
