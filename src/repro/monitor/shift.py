"""Distribution-shift detection from the stream of monitor verdicts.

The paper (§I) observes that "the frequent appearance of unseen patterns
provides an indicator of data distribution shift to the development team".
:class:`DistributionShiftDetector` operationalises that: it maintains a
sliding window over the binary out-of-pattern stream and raises an alarm
when the windowed rate significantly exceeds the rate calibrated on
validation data (a one-sided binomial z-test), with an optional CUSUM
accumulator for slowly drifting shifts.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

import numpy as np

from repro.devtools.lint.runtime import named_lock


@dataclass
class ShiftState:
    """Snapshot of the detector after one update.

    ``cusum`` is the accumulator value *at the moment the state was
    computed*: the state returned by :meth:`DistributionShiftDetector.update`
    reports the pre-restart crossing value when that update alarmed via
    CUSUM, while :meth:`DistributionShiftDetector.peek` always reports the
    live (post-restart) accumulator.
    """

    samples_seen: int
    window_rate: float
    z_score: float
    cusum: float
    alarm: bool


class DistributionShiftDetector:
    """Windowed out-of-pattern-rate alarm.

    Parameters
    ----------
    baseline_rate:
        Expected out-of-pattern rate without shift (from the γ calibration
        on validation data, e.g. 0.6% for MNIST at γ=2).
    window:
        Sliding window length (number of recent decisions considered).
    z_threshold:
        One-sided z-score above which the windowed rate is declared
        significantly higher than baseline.
    cusum_slack, cusum_threshold:
        The CUSUM accumulates ``(x - baseline - slack)`` per observation and
        alarms when it exceeds the threshold; catches slow drifts that never
        spike a single window.

    Alarm semantics: each :class:`ShiftState` reports whether *that update*
    crossed a limit.  When the CUSUM limit is hit, the accumulator restarts
    at zero (standard CUSUM restart), so the alarm is an edge — a fresh
    alarm needs fresh evidence rather than staying latched forever on the
    pre-shift residue.  The windowed z-test needs no reset: the window
    slides, so its alarm clears by itself once the rate recovers.
    """

    def __init__(
        self,
        baseline_rate: float,
        window: int = 200,
        z_threshold: float = 3.0,
        cusum_slack: float = 0.02,
        cusum_threshold: float = 8.0,
    ):
        if not 0.0 <= baseline_rate < 1.0:
            raise ValueError(f"baseline_rate must be in [0, 1), got {baseline_rate}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.baseline_rate = baseline_rate
        self.window = window
        self.z_threshold = z_threshold
        self.cusum_slack = cusum_slack
        self.cusum_threshold = cusum_threshold
        self._buffer: Deque[bool] = deque(maxlen=window)
        self._cusum = 0.0
        self._seen = 0
        # Serving calls update() from worker threads while the stats
        # endpoint peek()s and the drift loop rebaseline()s after a zone
        # swap; one lock serialises every window/accumulator access so a
        # rebaseline can never interleave with a half-applied update.
        self._lock = named_lock("DistributionShiftDetector._lock")

    def _state(self) -> ShiftState:
        """Current state from the window and accumulator (shared by
        :meth:`update` and :meth:`peek` so the alarm rule cannot drift)."""
        n = len(self._buffer)
        rate = sum(self._buffer) / n if n else 0.0
        # One-sided z-test of the windowed rate against the baseline.
        std = np.sqrt(
            max(self.baseline_rate * (1.0 - self.baseline_rate), 1e-12) / max(n, 1)
        )
        z = (rate - self.baseline_rate) / std
        # The z-test waits for a full window: partial-window estimates are
        # too noisy and would fire spuriously during warm-up.
        alarm = (n >= self.window and z >= self.z_threshold) or (
            self._cusum >= self.cusum_threshold
        )
        return ShiftState(
            samples_seen=self._seen,
            window_rate=rate,
            z_score=float(z),
            cusum=self._cusum,
            alarm=bool(alarm),
        )

    def _update_locked(self, out_of_pattern: bool) -> ShiftState:
        """One observation; caller holds ``self._lock``."""
        self._buffer.append(bool(out_of_pattern))
        self._seen += 1
        self._cusum = max(
            0.0,
            self._cusum + (float(out_of_pattern) - self.baseline_rate - self.cusum_slack),
        )
        state = self._state()
        if self._cusum >= self.cusum_threshold:
            # CUSUM restart: report the crossing value, then re-arm so the
            # alarm doesn't stay latched on the accumulated pre-shift mass.
            # A peek() immediately after therefore reports cusum 0.0 (and
            # no CUSUM alarm): the returned state is the record of the
            # crossing, peek() is the live post-restart accumulator.
            self._cusum = 0.0
        return state

    def update(self, out_of_pattern: bool) -> ShiftState:
        """Feed one monitor verdict; returns the current detector state."""
        with self._lock:
            return self._update_locked(out_of_pattern)

    def update_many(self, flags: Iterable[bool]) -> List[ShiftState]:
        """Feed a sequence of verdicts; returns the state after each.

        Holds the lock across the whole batch (via the unlocked helper —
        a plain lock would self-deadlock on nested ``update`` calls), so
        a concurrent ``rebaseline`` lands before or after the batch,
        never inside it.
        """
        with self._lock:
            return [self._update_locked(flag) for flag in flags]

    def peek(self) -> ShiftState:
        """Current state without consuming an observation (serving stats).

        Reflects the *post-restart* accumulator: after an update that
        alarmed via the CUSUM limit, the returned state reported the
        crossing value but the accumulator was re-armed at zero, so this
        peek reports ``cusum == 0.0`` (and alarms only if the windowed
        z-test still fires).  The two are intentionally different views
        of the same restart, not a disagreement.
        """
        with self._lock:
            return self._state()

    def rebaseline(self, baseline_rate: float) -> None:
        """Swap the no-shift baseline and re-arm the detector.

        Used by the drift loop after a zone swap: the absorbed patterns
        and re-chosen γ change the expected quiet rate, so the window and
        CUSUM built against the old baseline are cleared (keeping the old
        evidence would compare post-swap traffic against a stale
        reference).  ``samples_seen`` is cumulative and survives.
        """
        if not 0.0 <= baseline_rate < 1.0:
            raise ValueError(f"baseline_rate must be in [0, 1), got {baseline_rate}")
        with self._lock:
            self.baseline_rate = float(baseline_rate)
            self._buffer.clear()
            self._cusum = 0.0

    def reset(self) -> None:
        """Clear the window and the CUSUM accumulator."""
        with self._lock:
            self._buffer.clear()
            self._cusum = 0.0
            self._seen = 0


@dataclass
class DistanceShiftState:
    """Snapshot of the distance-histogram detector after one update."""

    samples_seen: int
    window_mean: float
    divergence: float
    histogram: np.ndarray
    alarm: bool


class DistanceShiftDetector:
    """Shift detection from *exact* Hamming distances, not binary verdicts.

    The binary out-of-pattern stream collapses "one bit outside the zone"
    and "half the layer flipped" into the same event.  The bitset backend
    (and now the BDD backend, via ``ZoneBackend.min_distances``) reports
    the exact distance of every decision to its class's visited set, so a
    shift can be read off the *distance histogram* before the binary rate
    moves: distributions drifting away from training shift probability
    mass to larger distances even while most samples still fall inside
    ``Z^γ``.

    The detector bins distances into ``[0, 1, ..., max_distance, overflow]``,
    maintains a sliding-window empirical histogram and alarms when its
    total-variation divergence from the calibration-time baseline exceeds
    ``divergence_threshold`` (with a full window, mirroring the z-test's
    warm-up guard).

    Parameters
    ----------
    baseline_distances:
        Distances observed on validation data (no shift), used to build
        the reference histogram.
    max_distance:
        Distances above this land in one overflow bin (default: the
        largest baseline distance + 1).
    window:
        Sliding window length.
    divergence_threshold:
        Total-variation distance (in [0, 1]) above which the windowed
        histogram is declared shifted.
    """

    def __init__(
        self,
        baseline_distances: Iterable[int],
        max_distance: Optional[int] = None,
        window: int = 200,
        divergence_threshold: float = 0.25,
    ):
        if not 0.0 < divergence_threshold <= 1.0:
            raise ValueError(
                f"divergence_threshold must be in (0, 1], got {divergence_threshold}"
            )
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.divergence_threshold = divergence_threshold
        self._buffer: Deque[int] = deque(maxlen=window)
        self._seen = 0
        # Same contract as DistributionShiftDetector._lock: updates from
        # worker threads vs. peek()/rebaseline() from stats and the drift
        # loop serialise on one lock.
        self._lock = named_lock("DistanceShiftDetector._lock")
        self._set_baseline(baseline_distances, max_distance)

    def _set_baseline(
        self, baseline_distances: Iterable[int], max_distance: Optional[int]
    ) -> None:
        """Validate a baseline sample and (re)build the reference histogram.

        The effective ``max_distance`` is validated and reported as the
        *computed* value (the raw argument is ``None`` on the default
        path), and an explicit bound below the largest baseline distance
        warns instead of silently clipping baseline mass into the
        overflow bin — a reference histogram with hidden overflow mass
        makes the TV divergence insensitive to exactly the outward drift
        the detector exists to catch.
        """
        baseline = np.asarray(list(baseline_distances), dtype=np.int64)
        if baseline.size == 0:
            raise ValueError("baseline_distances must be non-empty")
        if baseline.min() < 0:
            raise ValueError("distances must be non-negative")
        self.max_distance = (
            int(baseline.max()) + 1 if max_distance is None else int(max_distance)
        )
        if self.max_distance < 0:
            raise ValueError(
                f"max_distance must be non-negative, got {self.max_distance} "
                f"(from max_distance={max_distance!r})"
            )
        largest = int(baseline.max())
        if self.max_distance < largest:
            clipped = float((baseline > self.max_distance).mean())
            warnings.warn(
                f"max_distance={self.max_distance} is below the largest "
                f"baseline distance ({largest}): {clipped:.1%} of the "
                f"baseline mass lands in the overflow bin",
                RuntimeWarning,
                stacklevel=3,
            )
        self.baseline_histogram = self._histogram(baseline)

    def _histogram(self, distances: np.ndarray) -> np.ndarray:
        """Normalised counts over bins ``0..max_distance`` plus overflow."""
        clipped = np.minimum(distances, self.max_distance + 1)
        counts = np.bincount(clipped, minlength=self.max_distance + 2)
        return counts / counts.sum()

    def _state(self) -> DistanceShiftState:
        """Current state from the window (shared by :meth:`update` and
        :meth:`peek` so the alarm rule cannot drift)."""
        if not self._buffer:
            return DistanceShiftState(
                samples_seen=self._seen,
                window_mean=0.0,
                divergence=0.0,
                histogram=self.baseline_histogram.copy(),
                alarm=False,
            )
        histogram = self._histogram(np.asarray(self._buffer, dtype=np.int64))
        divergence = 0.5 * float(np.abs(histogram - self.baseline_histogram).sum())
        alarm = (
            len(self._buffer) >= self.window
            and divergence >= self.divergence_threshold
        )
        return DistanceShiftState(
            samples_seen=self._seen,
            window_mean=float(np.mean(self._buffer)),
            divergence=divergence,
            histogram=histogram,
            alarm=bool(alarm),
        )

    def _update_locked(self, distance: int) -> DistanceShiftState:
        """One observation; caller holds ``self._lock``."""
        if distance < 0:
            raise ValueError(f"distance must be non-negative, got {distance}")
        self._buffer.append(int(distance))
        self._seen += 1
        return self._state()

    def update(self, distance: int) -> DistanceShiftState:
        """Feed one decision's exact distance; returns the detector state."""
        with self._lock:
            return self._update_locked(distance)

    def update_many(self, distances: Iterable[int]) -> List[DistanceShiftState]:
        """Feed a sequence of distances; returns the state after each.

        Holds the lock once for the whole batch (see
        :meth:`DistributionShiftDetector.update_many`).
        """
        with self._lock:
            return [self._update_locked(d) for d in distances]

    def peek(self) -> DistanceShiftState:
        """Current state without consuming an observation (serving stats)."""
        with self._lock:
            return self._state()

    def rebaseline(
        self,
        baseline_distances: Iterable[int],
        max_distance: Optional[int] = None,
    ) -> None:
        """Rebuild the reference histogram and re-arm the detector.

        Used by the drift loop after a zone swap: distances are measured
        against the *new* ``Z^0``, so both the reference histogram and
        the sliding window built against the old zones are stale.  The
        binning is kept (same ``max_distance``) unless a new bound is
        given, so a serving layer's bounded-distance cap stays valid
        across swaps.  ``samples_seen`` is cumulative and survives.
        """
        with self._lock:
            self._set_baseline(
                baseline_distances,
                self.max_distance if max_distance is None else max_distance,
            )
            self._buffer.clear()

    def reset(self) -> None:
        """Clear the sliding window (the baseline is kept)."""
        with self._lock:
            self._buffer.clear()
            self._seen = 0
