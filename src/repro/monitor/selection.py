"""Gradient-based neuron selection (paper §II, "Neuron selection via
gradient analysis").

For wide layers, only the neurons whose output most influences the predicted
class are monitored; the rest are treated as don't-cares in the abstraction.
Sensitivity of output ``n_c`` to neuron ``n_i`` is ``|d n_c / d n_i|``.  Two
implementations are provided:

* :func:`weight_sensitivity` — the closed form for the common case where the
  monitored layer feeds a final linear layer directly: the derivative is
  simply the connecting weight.
* :func:`gradient_sensitivity` — the general case, backpropagating from the
  class logit to the monitored module over a sample of inputs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor


def weight_sensitivity(output_layer: Linear, class_index: int) -> np.ndarray:
    """Sensitivity of class ``class_index`` to each penultimate neuron.

    With no nonlinearity after the output layer, ``d n_c / d n_i`` is the
    weight connecting ``n_i`` to ``n_c`` (paper §II, special case).
    """
    if not isinstance(output_layer, Linear):
        raise TypeError(
            f"weight_sensitivity needs a Linear output layer, got {type(output_layer).__name__}"
        )
    weights = output_layer.weight.data
    if not 0 <= class_index < weights.shape[0]:
        raise IndexError(
            f"class index {class_index} out of range for {weights.shape[0]} classes"
        )
    return np.abs(weights[class_index])


def gradient_sensitivity(
    model: Module,
    monitored_module: Module,
    inputs: np.ndarray,
    class_index: int,
    batch_size: int = 128,
) -> np.ndarray:
    """Mean absolute gradient of the class logit w.r.t. the monitored layer.

    Averages ``|d logit_c / d activation_i|`` over ``inputs`` — the
    saliency-style estimate the paper cites (Simonyan et al.).
    """
    model.eval()
    captured = []

    def hook(_module: Module, _inp: Tensor, out: Tensor) -> None:
        captured.append(out)

    remove = monitored_module.register_forward_hook(hook)
    try:
        total: Optional[np.ndarray] = None
        count = 0
        for start in range(0, len(inputs), batch_size):
            captured.clear()
            batch = Tensor(inputs[start : start + batch_size])
            logits = model(batch)
            if not captured:
                raise RuntimeError("monitored module did not fire during forward pass")
            tapped = captured[-1]
            if not 0 <= class_index < logits.shape[1]:
                raise IndexError(
                    f"class index {class_index} out of range for {logits.shape[1]} classes"
                )
            logits[:, class_index].sum().backward()
            grad = tapped.grad
            if grad is None:
                raise RuntimeError(
                    "no gradient reached the monitored module; is it on the path to the output?"
                )
            flat = np.abs(grad).reshape(grad.shape[0], -1).sum(axis=0)
            total = flat if total is None else total + flat
            count += grad.shape[0]
            model.zero_grad()
        if total is None:
            raise ValueError("inputs must be non-empty")
        return total / count
    finally:
        remove()


def select_top_neurons(scores: np.ndarray, fraction: float) -> np.ndarray:
    """Indices of the highest-scoring neurons, sorted ascending.

    ``fraction`` in (0, 1] selects ``ceil(fraction * d)`` neurons — the
    paper's GTSRB experiment uses 25% of 84 neurons.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    scores = np.asarray(scores)
    count = max(1, int(np.ceil(fraction * scores.size)))
    top = np.argpartition(-scores, count - 1)[:count]
    return np.sort(top)


def select_random_neurons(
    width: int, fraction: float, seed: int = 0
) -> np.ndarray:
    """Random neuron subset of the same size — the ablation baseline."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    count = max(1, int(np.ceil(fraction * width)))
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(width, size=count, replace=False))
