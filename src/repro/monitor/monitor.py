"""The neuron activation pattern monitor (Definition 3, Algorithm 1).

A monitor is the tuple of per-class comfort zones built from the training
set after the standard training process.  :meth:`NeuronActivationMonitor.build`
implements Algorithm 1 end-to-end: it feeds the training data through the
network once, records the activation pattern of every *correctly predicted*
image in the zone of its ground-truth class, then applies γ Hamming
enlargement steps.

Monitors can be restricted to a subset of classes (the paper's GTSRB
experiment only monitors the stop-sign class) and to a subset of neurons
(gradient-based selection for wide layers).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

from repro.monitor.backends import DEFAULT_BACKEND
from repro.monitor.backends.bdd import make_zone_manager
from repro.monitor.patterns import extract_patterns, pack_patterns, unpack_patterns
from repro.monitor.zone import ComfortZone
from repro.nn.data import Dataset, stack_dataset
from repro.nn.layers import Module

PathLike = Union[str, os.PathLike]


class NeuronActivationMonitor:
    """Per-class comfort zones over (a subset of) one ReLU layer's neurons.

    Parameters
    ----------
    layer_width:
        Total number of neurons in the monitored layer.
    classes:
        The class indices to monitor (all classes of the task by default).
    gamma:
        Hamming enlargement radius shared by every zone.
    monitored_neurons:
        Indices of the neurons to monitor (all by default).  Patterns are
        projected onto these indices before zone insertion and queries, so
        unmonitored neurons are don't-cares in the abstraction.
    backend:
        Zone engine registry key: ``"bdd"`` (canonical diagram, the
        paper's engine) or ``"bitset"`` (vectorized XOR/popcount rows).
        Both give identical verdicts; see ``monitor/backends/README.md``.
    indexed:
        Arm the bitset backend's multi-index Hamming pruner, making γ
        queries sub-linear in the stored-pattern count (bitset-only; the
        pruner falls back to the brute kernel when it would not pay).
    """

    def __init__(
        self,
        layer_width: int,
        classes: Iterable[int],
        gamma: int = 0,
        monitored_neurons: Optional[Sequence[int]] = None,
        backend: str = DEFAULT_BACKEND,
        indexed: bool = False,
    ):
        if layer_width <= 0:
            raise ValueError(f"layer_width must be positive, got {layer_width}")
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        self.layer_width = layer_width
        self.classes = sorted(set(int(c) for c in classes))
        if not self.classes:
            raise ValueError("monitor needs at least one class")
        if monitored_neurons is None:
            self.monitored_neurons = np.arange(layer_width)
        else:
            self.monitored_neurons = np.asarray(sorted(set(monitored_neurons)), dtype=np.int64)
            if len(self.monitored_neurons) == 0:
                raise ValueError("monitored_neurons must be non-empty")
            if self.monitored_neurons[0] < 0 or self.monitored_neurons[-1] >= layer_width:
                raise ValueError(
                    f"monitored neuron indices must lie in [0, {layer_width})"
                )
        self.gamma = gamma
        self.backend_name = backend
        self.indexed = bool(indexed)
        # BDD zones share one manager: same variables, shared node table,
        # one GC/reorder policy (env-configurable via make_zone_manager).
        self._manager = (
            make_zone_manager(len(self.monitored_neurons))
            if backend == "bdd" else None
        )
        self.zones: Dict[int, ComfortZone] = {
            c: ComfortZone(
                len(self.monitored_neurons), gamma,
                manager=self._manager, backend=backend, indexed=self.indexed,
            )
            for c in self.classes
        }
        #: Attached :class:`~repro.store.ZoneStore` (``None`` = volatile).
        self._store = None

    # ------------------------------------------------------------------
    # construction (Algorithm 1)
    # ------------------------------------------------------------------
    def project(self, patterns: np.ndarray) -> np.ndarray:
        """Restrict full-layer patterns to the monitored neuron subset."""
        patterns = np.atleast_2d(patterns)
        if patterns.shape[1] != self.layer_width:
            raise ValueError(
                f"patterns have width {patterns.shape[1]}, expected {self.layer_width}"
            )
        return patterns[:, self.monitored_neurons]

    def record(self, patterns: np.ndarray, labels: np.ndarray, predictions: np.ndarray) -> int:
        """Insert patterns of correctly-predicted examples into their zones.

        Implements Algorithm 1 lines 4-8: a pattern is added to ``Z^0_c``
        only when the ground truth is ``c`` *and* the network predicted
        ``c``.  Returns the number of patterns recorded.
        """
        labels = np.asarray(labels)
        predictions = np.asarray(predictions)
        if not (len(patterns) == len(labels) == len(predictions)):
            raise ValueError(
                f"length mismatch: {len(patterns)} patterns, {len(labels)} labels, "
                f"{len(predictions)} predictions"
            )
        projected = self.project(patterns)
        recorded = 0
        for c in self.classes:
            mask = (labels == c) & (predictions == c)
            if not mask.any():
                continue
            self.zones[c].add_patterns(projected[mask])
            recorded += int(mask.sum())
        return recorded

    @classmethod
    def build(
        cls,
        model: Module,
        monitored_module: Module,
        train_dataset: Dataset,
        gamma: int = 0,
        classes: Optional[Iterable[int]] = None,
        monitored_neurons: Optional[Sequence[int]] = None,
        batch_size: int = 256,
        backend: str = DEFAULT_BACKEND,
        indexed: bool = False,
    ) -> "NeuronActivationMonitor":
        """Run Algorithm 1: one sweep over the training set, then enlarge.

        ``classes`` defaults to every label present in the training set.
        """
        inputs, labels = stack_dataset(train_dataset)
        patterns, logits = extract_patterns(model, monitored_module, inputs, batch_size)
        predictions = logits.argmax(axis=1)
        if classes is None:
            classes = np.unique(labels).tolist()
        monitor = cls(
            layer_width=patterns.shape[1],
            classes=classes,
            gamma=gamma,
            monitored_neurons=monitored_neurons,
            backend=backend,
            indexed=indexed,
        )
        monitor.record(patterns, labels, predictions)
        return monitor

    # ------------------------------------------------------------------
    # runtime queries
    # ------------------------------------------------------------------
    def is_known(self, pattern: np.ndarray, predicted_class: int) -> bool:
        """Is this full-layer pattern inside the predicted class's zone?

        Patterns from classes the monitor does not cover raise ``KeyError``
        — callers decide whether uncovered classes mean "always trusted"
        (see :class:`~repro.monitor.runtime.MonitoredClassifier`).
        """
        if predicted_class not in self.zones:
            raise KeyError(f"class {predicted_class} is not monitored")
        projected = self.project(pattern)[0]
        return self.zones[predicted_class].contains(projected)

    def check(self, patterns: np.ndarray, predicted_classes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`is_known`; unmonitored classes return True.

        Returns a boolean array: ``True`` = pattern supported by training
        (inside the zone), ``False`` = out-of-pattern warning.
        """
        patterns = np.atleast_2d(patterns)
        predicted_classes = np.asarray(predicted_classes)
        projected = self.project(patterns)
        supported = np.ones(len(patterns), dtype=bool)
        for c, zone in self.zones.items():
            mask = predicted_classes == c
            if mask.any():
                supported[mask] = zone.contains_batch(projected[mask])
        return supported

    def min_distances(
        self,
        patterns: np.ndarray,
        predicted_classes: np.ndarray,
        cap: Optional[int] = None,
    ) -> np.ndarray:
        """Exact per-row Hamming distance to the predicted class's ``Z^0``.

        The distance refines :meth:`check`'s binary verdict into "how far
        out-of-distribution": ``distance <= gamma`` iff the row is
        supported.  Rows predicted as an unmonitored class get distance 0
        (the monitor has no opinion, mirroring ``check``'s ``True``); an
        empty zone yields the ``d + 1`` sentinel of the backends.

        ``cap=k`` bounds every answer at ``k + 1`` ("exact distance, or
        > k"), which lets the indexed bitset backend serve the query from
        its pigeonhole shortlist instead of scanning all stored rows.
        """
        patterns = np.atleast_2d(patterns)
        predicted_classes = np.asarray(predicted_classes)
        projected = self.project(patterns)
        distances = np.zeros(len(patterns), dtype=np.int64)
        for c, zone in self.zones.items():
            mask = predicted_classes == c
            if mask.any():
                distances[mask] = zone.min_distances(projected[mask], cap=cap)
        return distances

    def monitors_class(self, class_index: int) -> bool:
        """Whether the monitor has a zone for this class."""
        return class_index in self.zones

    def set_gamma(self, gamma: int) -> None:
        """Change γ on every zone (lazily recomputed on next query)."""
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        changed = gamma != self.gamma
        self.gamma = gamma
        for zone in self.zones.values():
            zone.set_gamma(gamma)
        if changed and self._store is not None:
            self._store.append_gamma(gamma)

    def statistics(self) -> Dict[int, Dict[str, float]]:
        """Per-class zone statistics."""
        return {c: zone.statistics() for c, zone in self.zones.items()}

    def engine_stats(self) -> Optional[Dict[str, float]]:
        """Shared BDD engine counters (``None`` for non-BDD monitors).

        One dict for the whole monitor — all zones share one manager —
        with live/physical node counts, unique-table size, GC and
        reorder activity and the operation-cache hit rates (see
        :meth:`repro.bdd.manager.BDDManager.cache_stats`).  The CLI's
        ``evaluate``/``sweep``/``serve`` commands print this line.
        """
        if self._manager is None:
            return None
        return self._manager.cache_stats()

    def reorder(self, method: str = "sift", **kwargs) -> Optional[Dict[str, int]]:
        """Sift the shared BDD manager (no-op ``None`` for non-BDD)."""
        if self._manager is None:
            return None
        return self._manager.reorder(method=method, **kwargs)

    def __repr__(self) -> str:
        return (
            f"NeuronActivationMonitor(classes={self.classes}, gamma={self.gamma}, "
            f"monitored={len(self.monitored_neurons)}/{self.layer_width}, "
            f"backend={self.backend_name!r})"
        )

    @classmethod
    def merge(
        cls,
        monitors: Sequence["NeuronActivationMonitor"],
        gamma: Optional[int] = None,
        indexed: Optional[bool] = None,
    ) -> "NeuronActivationMonitor":
        """Union several monitors built over the same monitored neurons.

        Useful when training data is processed in shards (e.g. a fleet of
        vehicles each contributes patterns): the merged monitor's zones are
        the set union of the inputs' visited sets, with the zone backend
        taken from the first monitor.  All inputs must agree on
        ``layer_width`` and ``monitored_neurons``; backends may differ
        (the visited sets are exchanged as plain pattern matrices).

        ``gamma`` and ``indexed`` must either agree across the inputs or
        be chosen explicitly via the keyword overrides — silently adopting
        the first monitor's values would let a drift-loop absorption of a
        staging zone quietly change the radius (or drop the index) of the
        published monitor.
        """
        if not monitors:
            raise ValueError("merge needs at least one monitor")
        first = monitors[0]
        for other in monitors[1:]:
            if other.layer_width != first.layer_width:
                raise ValueError(
                    f"layer width mismatch: {other.layer_width} vs {first.layer_width}"
                )
            if not np.array_equal(other.monitored_neurons, first.monitored_neurons):
                raise ValueError("monitored neuron sets differ; cannot merge")
        if gamma is None:
            gammas = sorted({m.gamma for m in monitors})
            if len(gammas) > 1:
                raise ValueError(
                    f"gamma differs across monitors ({gammas}); "
                    f"pass gamma= to choose the merged radius explicitly"
                )
            gamma = first.gamma
        if indexed is None:
            flags = {m.indexed for m in monitors}
            if len(flags) > 1:
                raise ValueError(
                    "indexed differs across monitors; "
                    "pass indexed= to choose explicitly"
                )
            indexed = first.indexed
        classes = sorted({c for m in monitors for c in m.classes})
        merged = cls(
            layer_width=first.layer_width,
            classes=classes,
            gamma=gamma,
            monitored_neurons=first.monitored_neurons,
            backend=first.backend_name,
            indexed=indexed,
        )
        for monitor in monitors:
            for c, zone in monitor.zones.items():
                visited = zone.backend.visited_patterns()
                if len(visited):
                    merged.zones[c].add_patterns(visited)
        return merged

    # ------------------------------------------------------------------
    # durable store (crash-consistent WAL + segments)
    # ------------------------------------------------------------------
    def store_meta(self) -> Dict[str, object]:
        """The monitor config as recorded in a store's META record.

        The same fields as :meth:`save`'s metadata (plus the monitored
        neuron indices), so store state stays payload-compatible with
        the portable ``to_payload()`` / save-file form.
        """
        return {
            "layer_width": self.layer_width,
            "gamma": self.gamma,
            "classes": self.classes,
            "pattern_width": int(len(self.monitored_neurons)),
            "backend": self.backend_name,
            "indexed": self.indexed,
            "monitored_neurons": [int(i) for i in self.monitored_neurons],
        }

    def attach_store(self, store) -> None:
        """Write-through this monitor to a :class:`~repro.store.ZoneStore`.

        A fresh store is initialized with this monitor's config and the
        current visited sets; an existing store must agree on the layer
        / projection / class layout (γ may differ — it is a logged,
        replayable quantity, not identity).  From here on every fresh
        pattern insert and every γ change is appended to the store's
        WAL, so a crash at any point recovers to the last append.
        """
        from repro.store import StoreError

        meta = self.store_meta()
        if not store.initialized:
            store.initialize(meta)
            for c in self.classes:
                visited = self.zones[c].backend.visited_patterns()
                if len(visited):
                    store.append_insert(c, pack_patterns(visited))
        else:
            existing = store.meta
            for key in ("layer_width", "pattern_width"):
                if int(existing[key]) != int(meta[key]):
                    raise StoreError(
                        f"store {key}={existing[key]} does not match "
                        f"monitor {key}={meta[key]}"
                    )
            if [int(c) for c in existing["classes"]] != meta["classes"]:
                raise StoreError(
                    f"store classes {existing['classes']} do not match "
                    f"monitor classes {meta['classes']}"
                )
            if "monitored_neurons" in existing and list(
                existing["monitored_neurons"]
            ) != meta["monitored_neurons"]:
                raise StoreError("store monitored neuron set differs from monitor")
        self._store = store
        for c, zone in self.zones.items():
            zone.attach_sink(
                lambda rows, _c=c: store.append_insert(_c, rows)
            )

    def detach_store(self) -> None:
        """Stop write-through (the store keeps everything logged so far)."""
        self._store = None
        for zone in self.zones.values():
            zone.attach_sink(None)

    @property
    def store(self):
        return self._store

    @classmethod
    def from_store(
        cls,
        store,
        backend: Optional[str] = None,
        attach: bool = True,
    ) -> "NeuronActivationMonitor":
        """Cold-start a monitor from a store directory or open store.

        Recovery replays the newest valid segment plus the WAL tail into
        fresh zones via the packed fast path (no unpack/re-pack round
        trip on the bitset backend).  ``backend`` overrides the recorded
        engine, exactly like :meth:`load`.  With ``attach=True`` the
        rebuilt monitor immediately writes through to the same store.
        """
        from repro.store import ZoneStore

        if isinstance(store, (str, os.PathLike)):
            store = ZoneStore.open(store)
        state = store.state()
        meta = state.meta
        restored_backend = backend or meta.get("backend", DEFAULT_BACKEND)
        monitor = cls(
            layer_width=int(meta["layer_width"]),
            classes=[int(c) for c in meta["classes"]],
            gamma=int(state.gamma),
            monitored_neurons=meta.get("monitored_neurons"),
            backend=restored_backend,
            indexed=bool(meta.get("indexed", False)) and restored_backend == "bitset",
        )
        for c in monitor.classes:
            # Segment bodies are deduplicated and byte-sorted by
            # compaction, so the bitset backend ingests them sort-free;
            # the WAL tail is raw append order and takes the full path.
            seg_rows = state.segment_rows.get(c)
            if seg_rows is not None and seg_rows.size:
                monitor.zones[c].add_packed(seg_rows, assume_sorted_unique=True)
            tail = state.tail_rows.get(c)
            if tail is not None and tail.size:
                monitor.zones[c].add_packed(tail)
        if attach:
            monitor.attach_store(store)
        return monitor

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Serialise to ``.npz``: visited patterns (packed bits) + metadata.

        Zones are rebuilt from visited patterns on load; storing ``Z^0``
        rather than ``Z^γ`` keeps files small and lets γ (and even the
        backend) be changed after reload.  The format is backend-portable:
        every backend can emit and re-ingest its deduplicated visited set.
        """
        arrays = {}
        meta = {
            "layer_width": self.layer_width,
            "gamma": self.gamma,
            "classes": self.classes,
            "pattern_width": int(len(self.monitored_neurons)),
            "backend": self.backend_name,
            "indexed": self.indexed,
        }
        arrays["monitored_neurons"] = self.monitored_neurons
        for c, zone in self.zones.items():
            visited = zone.backend.visited_patterns()
            arrays[f"class_{c}"] = pack_patterns(visited)
            arrays[f"count_{c}"] = np.array([visited.shape[0]])
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: PathLike, backend: Optional[str] = None) -> "NeuronActivationMonitor":
        """Restore a monitor saved by :meth:`save`.

        ``backend`` overrides the zone engine recorded in the file — the
        on-disk format is a plain pattern set, so a monitor saved from the
        BDD engine can be served by the bitset engine and vice versa.
        """
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            monitored = archive["monitored_neurons"]
            restored_backend = backend or meta.get("backend", DEFAULT_BACKEND)
            monitor = cls(
                layer_width=int(meta["layer_width"]),
                classes=meta["classes"],
                gamma=int(meta["gamma"]),
                monitored_neurons=monitored,
                backend=restored_backend,
                # Indexing is bitset-only; drop it when the engine is
                # overridden to one that cannot honour it.
                indexed=bool(meta.get("indexed", False))
                and restored_backend == "bitset",
            )
            width = int(meta["pattern_width"])
            for c in meta["classes"]:
                count = int(archive[f"count_{c}"][0])
                packed = archive[f"class_{c}"]
                if count:
                    patterns = unpack_patterns(packed, width)[:count]
                    monitor.zones[c].add_patterns(patterns)
        return monitor
