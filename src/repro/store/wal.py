"""Append-only pattern WAL: length-prefixed, CRC32C-checksummed records.

File layout::

    header   <4sHHQI>  magic b"RZWL" | version | reserved | base | crc
    record*  <II>      payload length | crc32c(payload)   then payload

``base`` is the logical offset of the first record in this file: logical
offsets are what segments record as their replay cursor, and they stay
monotonic even if a future generation prunes the WAL (or a corrupt WAL
is quarantined and restarted at the last segment's offset).  The header
CRC covers the first 16 bytes.

Record payloads are typed by their first byte — no pickle anywhere in
the durability path:

====  ========  =====================================================
type  name      payload after the type byte
====  ========  =====================================================
1     META      UTF-8 JSON monitor config (layer width, classes, γ,
                monitored neurons, backend, pattern/row widths)
2     INSERT    ``<I`` class id, then N×row_bytes raw packed-bit rows
3     GAMMA     ``<I`` new γ
4     SNAPSHOT  ``<QI`` epoch, γ, then UTF-8 JSON per-class dedup
                counts — the durable form of a published ZoneSnapshot
====  ========  =====================================================

Recovery contract: :meth:`PatternWAL.scan` decodes records until the
first frame that fails its length bound, CRC, or payload decode; that
offset is the valid end.  A torn tail (crash mid-append) is therefore
*detected*, never parsed, and :meth:`PatternWAL.repair` truncates the
file back to the last valid record.  Bytes past the first bad frame are
unreachable by design — framing cannot be trusted beyond it.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.store import _faults
from repro.store.checksum import crc32c

MAGIC = b"RZWL"
VERSION = 1

HEADER = struct.Struct("<4sHHQI")  # magic, version, reserved, base, header crc
RECORD = struct.Struct("<II")  # payload length, payload crc32c

TYPE_META = 1
TYPE_INSERT = 2
TYPE_GAMMA = 3
TYPE_SNAPSHOT = 4

_INSERT_PREFIX = struct.Struct("<BI")  # type, class id
_GAMMA_BODY = struct.Struct("<BI")  # type, gamma
_SNAPSHOT_PREFIX = struct.Struct("<BQI")  # type, epoch, gamma

#: Framing sanity bound — a length prefix above this is treated as
#: corruption rather than an allocation request.
MAX_RECORD_BYTES = 1 << 30

FSYNC_ALWAYS = "always"
FSYNC_MARKERS = "markers"
FSYNC_NEVER = "never"

ENV_FSYNC = "REPRO_STORE_FSYNC"


def fsync_policy(override: Optional[str] = None) -> str:
    """Resolve the fsync policy: explicit override > env > ``markers``."""
    value = override if override is not None else os.environ.get(ENV_FSYNC, "")
    value = value.strip().lower()
    if value in ("1", "true", "yes", FSYNC_ALWAYS):
        return FSYNC_ALWAYS
    if value in ("0", "false", "no", FSYNC_NEVER):
        return FSYNC_NEVER
    if value in ("", FSYNC_MARKERS):
        return FSYNC_MARKERS
    raise ValueError(f"unknown fsync policy {value!r}")


class WALError(Exception):
    """The WAL file is structurally unusable (bad header, wrong magic)."""


@dataclass(frozen=True)
class MetaRecord:
    offset: int  # logical offset of the record frame
    meta: dict


@dataclass(frozen=True)
class InsertRecord:
    offset: int
    class_id: int
    rows: bytes  # N × row_bytes raw packed-bit rows

    def as_array(self, row_bytes: int) -> np.ndarray:
        if row_bytes <= 0 or len(self.rows) % row_bytes:
            raise WALError(
                f"insert record at offset {self.offset}: {len(self.rows)} "
                f"body bytes is not a multiple of row_bytes={row_bytes}"
            )
        return np.frombuffer(self.rows, dtype=np.uint8).reshape(-1, row_bytes)


@dataclass(frozen=True)
class GammaRecord:
    offset: int
    gamma: int


@dataclass(frozen=True)
class SnapshotRecord:
    offset: int
    epoch: int
    gamma: int
    counts: Dict[int, int]


WalRecord = Union[MetaRecord, InsertRecord, GammaRecord, SnapshotRecord]


@dataclass
class ScanResult:
    records: List[WalRecord] = field(default_factory=list)
    valid_end: int = 0  # logical offset just past the last valid record
    torn_bytes: int = 0  # bytes past valid_end that failed validation
    reason: Optional[str] = None  # why the scan stopped early

    @property
    def clean(self) -> bool:
        return self.torn_bytes == 0


def _decode(offset: int, payload: bytes) -> WalRecord:
    rtype = payload[0]
    if rtype == TYPE_META:
        return MetaRecord(offset, json.loads(payload[1:].decode("utf-8")))
    if rtype == TYPE_INSERT:
        _, class_id = _INSERT_PREFIX.unpack_from(payload)
        return InsertRecord(offset, class_id, payload[_INSERT_PREFIX.size :])
    if rtype == TYPE_GAMMA:
        _, gamma = _GAMMA_BODY.unpack(payload)
        return GammaRecord(offset, gamma)
    if rtype == TYPE_SNAPSHOT:
        _, epoch, gamma = _SNAPSHOT_PREFIX.unpack_from(payload)
        raw = json.loads(payload[_SNAPSHOT_PREFIX.size :].decode("utf-8"))
        counts = {int(c): int(n) for c, n in raw.items()}
        return SnapshotRecord(offset, epoch, gamma, counts)
    raise ValueError(f"unknown record type {rtype}")


class PatternWAL:
    """One append-only WAL file with checksummed frames and torn-tail repair."""

    def __init__(self, path, fsync: Optional[str] = None, base: int = 0):
        self.path = os.fspath(path)
        self.fsync = fsync_policy(fsync)
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = open(self.path, "ab")
        if not exists:
            self.base = base
            header = HEADER.pack(MAGIC, VERSION, 0, base, 0)[:-4]
            _faults.write(self._file, header + crc32c(header).to_bytes(4, "little"))
            self.flush(sync=self.fsync != FSYNC_NEVER)
        else:
            try:
                self.base = self._read_header()
            except WALError:
                self._file.close()
                raise
        self._offset = self.base + os.path.getsize(self.path) - HEADER.size

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    @property
    def offset(self) -> int:
        """Logical end offset (grows by frame size on every append)."""
        return self._offset

    def _append(self, payload: bytes, marker: bool = False) -> int:
        frame = RECORD.pack(len(payload), crc32c(payload)) + payload
        _faults.write(self._file, frame)
        if self.fsync == FSYNC_ALWAYS or (marker and self.fsync == FSYNC_MARKERS):
            self.flush(sync=True)
        else:
            self._file.flush()
        offset = self._offset
        self._offset += len(frame)
        return offset

    def append_meta(self, meta: dict) -> int:
        payload = bytes([TYPE_META]) + json.dumps(meta, sort_keys=True).encode("utf-8")
        return self._append(payload, marker=True)

    def append_insert(self, class_id: int, rows: np.ndarray) -> int:
        rows = np.ascontiguousarray(rows, dtype=np.uint8)
        payload = _INSERT_PREFIX.pack(TYPE_INSERT, int(class_id)) + rows.tobytes()
        return self._append(payload)

    def append_gamma(self, gamma: int) -> int:
        return self._append(_GAMMA_BODY.pack(TYPE_GAMMA, int(gamma)))

    def append_snapshot(self, epoch: int, gamma: int, counts: Dict[int, int]) -> int:
        body = json.dumps(
            {str(int(c)): int(n) for c, n in counts.items()}, sort_keys=True
        ).encode("utf-8")
        payload = _SNAPSHOT_PREFIX.pack(TYPE_SNAPSHOT, int(epoch), int(gamma)) + body
        return self._append(payload, marker=True)

    def flush(self, sync: bool = False) -> None:
        self._file.flush()
        if sync:
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    # ------------------------------------------------------------------
    # scanning / recovery
    # ------------------------------------------------------------------
    def _read_header(self) -> int:
        with open(self.path, "rb") as f:
            raw = f.read(HEADER.size)
        if len(raw) < HEADER.size:
            raise WALError(f"{self.path}: truncated WAL header")
        magic, version, _, base, header_crc = HEADER.unpack(raw)
        if magic != MAGIC:
            raise WALError(f"{self.path}: bad WAL magic {magic!r}")
        if version != VERSION:
            raise WALError(f"{self.path}: unsupported WAL version {version}")
        if crc32c(raw[:-4]) != header_crc:
            raise WALError(f"{self.path}: WAL header checksum mismatch")
        return base

    def scan(self, start: int = 0) -> ScanResult:
        """Decode records with logical offsets >= *start*.

        Stops at the first frame that fails validation; the remainder is
        reported as ``torn_bytes`` with a ``reason`` and is what
        :meth:`repair` would truncate.  *start* must be a frame boundary
        (a logical offset previously returned by an append or recorded
        as a segment's replay cursor); the file is read from there, not
        from the beginning.
        """
        self._file.flush()
        base = self._read_header()  # re-validates the header on every scan
        origin = max(start, base)
        with open(self.path, "rb") as f:
            f.seek(HEADER.size + (origin - base))
            data = f.read()
        view = memoryview(data)
        size = len(view)
        result = ScanResult(valid_end=origin)
        pos = 0
        while pos < size:
            offset = origin + pos
            if size - pos < RECORD.size:
                result.reason = "torn length prefix"
                break
            length, expected_crc = RECORD.unpack_from(view, pos)
            if length == 0 or length > MAX_RECORD_BYTES:
                result.reason = f"implausible record length {length}"
                break
            if size - pos - RECORD.size < length:
                result.reason = "torn record body"
                break
            payload = bytes(view[pos + RECORD.size : pos + RECORD.size + length])
            if crc32c(payload) != expected_crc:
                result.reason = "record checksum mismatch"
                break
            try:
                record = _decode(offset, payload)
            except Exception as exc:
                result.reason = f"undecodable record: {exc}"
                break
            pos += RECORD.size + length
            result.valid_end = origin + pos
            result.records.append(record)
        result.torn_bytes = size - (result.valid_end - origin)
        return result

    def repair(self, scan: Optional[ScanResult] = None) -> int:
        """Truncate everything past the last valid record; returns bytes cut."""
        if scan is None:
            scan = self.scan()
        if scan.torn_bytes:
            self._file.close()
            file_end = HEADER.size + (scan.valid_end - self.base)
            with open(self.path, "r+b") as f:
                f.truncate(file_end)
                f.flush()
                os.fsync(f.fileno())
            self._file = open(self.path, "ab")
            self._offset = scan.valid_end
        return scan.torn_bytes
