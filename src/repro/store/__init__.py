"""Durable crash-consistent zone store (WAL + mmap segments).

Every zone in the serving stack used to live in process memory only:
workers rehydrate from in-memory payload pickles and the drift loop's
:class:`~repro.monitor.drift.ZoneSnapshot` epochs vanished on a
full-fleet restart.  This package closes that durability gap:

* :mod:`repro.store.wal` — an append-only pattern WAL of
  length-prefixed, CRC32C-checksummed records (per-class packed-bit
  pattern inserts, γ changes, zone-epoch snapshot markers), with
  detect-and-truncate recovery of a torn tail.
* :mod:`repro.store.segment` — periodically compacted, checksummed,
  mmap-able packed-bit segment files (header: magic / version / class
  layout / row counts; one body CRC per class so corruption is located,
  not just detected), written tmp-then-rename so a crash mid-compaction
  never damages the previous generation.
* :mod:`repro.store.store` — :class:`ZoneStore`, the orchestration:
  cold start is a segment file map plus a WAL tail replay instead of a
  pickle parse; recovery after *any* crash point is detect → truncate →
  replay to a bit-identical monitor; a corrupt segment is quarantined
  and the state rebuilt from the WAL.
* :mod:`repro.store.checksum` — CRC32C (Castagnoli), byte-table
  reference plus a vectorized numpy log-reduction kernel for large
  buffers (the container bakes in no crc32c wheel).

See ``src/repro/monitor/backends/README.md`` ("Durability") for the
record format, the compaction / recovery state machine and the fsync
policy knob ``REPRO_STORE_FSYNC``.
"""

from repro.store.checksum import crc32c
from repro.store.store import (
    StoreCorruptionError,
    StoreError,
    ZoneStore,
)
from repro.store.wal import PatternWAL
from repro.store.segment import SegmentFile, write_segment

__all__ = [
    "crc32c",
    "PatternWAL",
    "SegmentFile",
    "write_segment",
    "StoreCorruptionError",
    "StoreError",
    "ZoneStore",
]
