"""Deterministic torn-write fault injection for durability tests.

Every byte the store writes — WAL appends, segment bodies, file headers —
funnels through :func:`write`.  When ``REPRO_STORE_CRASH_AT_BYTE=<n>`` is
set, the process is granted a budget of *n* store-written bytes; the
write that exhausts it is cut short at exactly the budget boundary
(flushed and fsync'd so the partial bytes really reach the file) and the
process is killed with SIGKILL.  Driving *n* across a file's byte range
reproduces a crash at every possible torn-write offset — mid-record,
mid-length-prefix, mid-segment-header — without timing games.

The budget is read once per process (tests set the env var before
spawning the writer child) and is deliberately process-wide: a single
budget sweep crosses WAL appends *and* the segment writes of a
compaction, which is how the mid-compaction crash windows get covered.
"""

from __future__ import annotations

import os
import signal

ENV_CRASH_AT_BYTE = "REPRO_STORE_CRASH_AT_BYTE"

_remaining: int | None = None
_written = 0


def _budget() -> int:
    global _remaining
    if _remaining is None:
        raw = os.environ.get(ENV_CRASH_AT_BYTE, "")
        _remaining = int(raw) if raw else -1
    return _remaining


def written() -> int:
    """Total store bytes this process has written through :func:`write`.

    The crash sweep's coordinate system: an uncrashed reference run
    records this counter at each workload checkpoint, and the budgets
    sampled between two checkpoints land the kill inside that phase —
    mid-insert, mid-compaction, mid-snapshot-marker.
    """
    return _written


def write(fileobj, data) -> None:
    """Write *data* to *fileobj*, honouring the crash-at-byte budget."""
    global _remaining, _written
    budget = _budget()
    view = memoryview(data)
    if view.nbytes == 0:  # zero-row arrays cannot be cast to "B"
        return
    view = view.cast("B")
    if budget < 0:
        _written += len(view)
        fileobj.write(view)
        return
    if len(view) < budget:
        _remaining = budget - len(view)
        _written += len(view)
        fileobj.write(view)
        return
    _written += budget
    fileobj.write(view[:budget])
    fileobj.flush()
    os.fsync(fileobj.fileno())
    os.kill(os.getpid(), signal.SIGKILL)
