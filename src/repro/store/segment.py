"""Compacted, checksummed, mmap-able packed-bit segment files.

File layout::

    prefix  <4sHHII>  magic b"RZSG" | version | reserved |
                      json header length | crc32c(json header)
    header  UTF-8 JSON (see below)
    body    per-class packed-bit row matrices, back to back

JSON header fields::

    seq         segment sequence number (monotonic per store)
    epoch       zone epoch captured by this segment
    gamma       γ at capture time
    wal_offset  logical WAL offset up to which this segment is complete
                (replay resumes here on cold start)
    meta        the monitor config (same dict as the WAL META record)
    row_bytes   bytes per packed pattern row
    classes     {class id: {"offset": body-relative byte offset,
                            "rows": row count, "crc": crc32c(body bytes)}}

Each class body carries its own CRC, so corruption is *located* (the
store can report which class region is damaged), not merely detected.
Segments are written to a dotfile in the same directory, fsync'd, then
atomically ``os.replace``'d into place — a crash mid-compaction leaves
either the previous generation intact or the new file complete, never a
half-written ``segment-*.rzs``.

Reads are zero-copy: :meth:`SegmentFile.rows` returns a numpy view over
the mmap'd body bytes, which is what makes cold start a file map + tail
replay instead of a pickle parse.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from typing import Dict, List, Optional

import numpy as np

from repro.store import _faults
from repro.store.checksum import crc32c

MAGIC = b"RZSG"
VERSION = 1

PREFIX = struct.Struct("<4sHHII")  # magic, version, reserved, json len, json crc

SEGMENT_SUFFIX = ".rzs"
QUARANTINE_SUFFIX = ".quarantined"
_TMP_PREFIX = ".tmp-"


class SegmentError(Exception):
    """The segment file is invalid (bad magic, checksum, or layout)."""


def segment_name(seq: int) -> str:
    return f"segment-{seq:08d}{SEGMENT_SUFFIX}"


def list_segments(directory) -> List[str]:
    """Paths of non-quarantined segment files, newest sequence first."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    picked = [
        n
        for n in names
        if n.startswith("segment-") and n.endswith(SEGMENT_SUFFIX)
    ]
    return [os.path.join(directory, n) for n in sorted(picked, reverse=True)]


def write_segment(
    directory,
    seq: int,
    meta: dict,
    epoch: int,
    gamma: int,
    wal_offset: int,
    class_rows: Dict[int, np.ndarray],
    row_bytes: int,
    fsync: bool = True,
) -> str:
    """Write one segment atomically; returns the final path."""
    layout: Dict[str, Dict[str, int]] = {}
    bodies: List[np.ndarray] = []
    cursor = 0
    for class_id in sorted(class_rows):
        rows = np.ascontiguousarray(class_rows[class_id], dtype=np.uint8)
        if rows.ndim != 2 or rows.shape[1] != row_bytes:
            raise ValueError(
                f"class {class_id}: expected (N, {row_bytes}) packed rows, "
                f"got shape {rows.shape}"
            )
        layout[str(int(class_id))] = {
            "offset": cursor,
            "rows": int(rows.shape[0]),
            "crc": crc32c(rows),
        }
        bodies.append(rows)
        cursor += rows.nbytes
    header = json.dumps(
        {
            "seq": int(seq),
            "epoch": int(epoch),
            "gamma": int(gamma),
            "wal_offset": int(wal_offset),
            "meta": meta,
            "row_bytes": int(row_bytes),
            "classes": layout,
        },
        sort_keys=True,
    ).encode("utf-8")
    final_path = os.path.join(directory, segment_name(seq))
    tmp_path = os.path.join(directory, _TMP_PREFIX + segment_name(seq))
    with open(tmp_path, "wb") as f:
        _faults.write(f, PREFIX.pack(MAGIC, VERSION, 0, len(header), crc32c(header)))
        _faults.write(f, header)
        for rows in bodies:
            _faults.write(f, rows)
        f.flush()
        if fsync:
            os.fsync(f.fileno())
    os.replace(tmp_path, final_path)
    if fsync:
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    return final_path


class SegmentFile:
    """Validated, mmap-backed read view of one segment file.

    The constructor validates framing (magic, version, header CRC,
    body extent); per-class body CRCs are checked by :meth:`verify` —
    the store runs it before trusting a segment on cold start, so a
    flipped bit anywhere in the file is detected before any pattern
    reaches a zone.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._file = open(self.path, "rb")
        try:
            self._mmap: Optional[mmap.mmap] = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as exc:  # empty file cannot be mapped
            self._file.close()
            raise SegmentError(f"{self.path}: cannot map segment: {exc}") from exc
        try:
            self._parse()
        except SegmentError:
            self.close()
            raise

    def _parse(self) -> None:
        data = self._mmap
        if len(data) < PREFIX.size:
            raise SegmentError(f"{self.path}: truncated segment prefix")
        magic, version, _, json_len, json_crc = PREFIX.unpack_from(data, 0)
        if magic != MAGIC:
            raise SegmentError(f"{self.path}: bad segment magic {magic!r}")
        if version != VERSION:
            raise SegmentError(f"{self.path}: unsupported segment version {version}")
        if len(data) < PREFIX.size + json_len:
            raise SegmentError(f"{self.path}: truncated segment header")
        raw_header = bytes(data[PREFIX.size : PREFIX.size + json_len])
        if crc32c(raw_header) != json_crc:
            raise SegmentError(f"{self.path}: segment header checksum mismatch")
        try:
            header = json.loads(raw_header.decode("utf-8"))
        except Exception as exc:
            raise SegmentError(f"{self.path}: undecodable segment header: {exc}")
        self.seq = int(header["seq"])
        self.epoch = int(header["epoch"])  # lint: disable=epoch-monotonicity -- decoding an immutable on-disk artifact, not live fleet state
        self.gamma = int(header["gamma"])
        self.wal_offset = int(header["wal_offset"])
        self.meta = header["meta"]
        self.row_bytes = int(header["row_bytes"])
        self._layout = {int(c): spec for c, spec in header["classes"].items()}
        self._body_start = PREFIX.size + json_len
        body_size = len(data) - self._body_start
        for class_id, spec in self._layout.items():
            end = spec["offset"] + spec["rows"] * self.row_bytes
            if spec["offset"] < 0 or end > body_size:
                raise SegmentError(
                    f"{self.path}: class {class_id} body [{spec['offset']}, {end}) "
                    f"exceeds segment body of {body_size} bytes"
                )

    @property
    def classes(self) -> List[int]:
        return sorted(self._layout)

    def row_count(self, class_id: int) -> int:
        return int(self._layout[class_id]["rows"])

    def rows(self, class_id: int) -> np.ndarray:
        """Zero-copy ``(N, row_bytes)`` view of one class's packed rows."""
        spec = self._layout[class_id]
        count = int(spec["rows"])
        if count == 0:
            return np.zeros((0, self.row_bytes), dtype=np.uint8)
        return np.frombuffer(
            self._mmap,
            dtype=np.uint8,
            count=count * self.row_bytes,
            offset=self._body_start + int(spec["offset"]),
        ).reshape(count, self.row_bytes)

    def verify(self) -> List[int]:
        """Class ids whose body bytes fail their recorded CRC."""
        bad = []
        for class_id, spec in sorted(self._layout.items()):
            if crc32c(self.rows(class_id)) != int(spec["crc"]):
                bad.append(class_id)
        return bad

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if not self._file.closed:
            self._file.close()

    def __repr__(self) -> str:
        return (
            f"SegmentFile(seq={self.seq}, epoch={self.epoch}, "
            f"gamma={self.gamma}, classes={len(self._layout)})"
        )
