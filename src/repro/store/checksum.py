"""CRC32C (Castagnoli) without a native extension.

The store checksums every WAL record and every segment body, and the
container bakes in no ``crc32c``/``google-crc32c`` wheel, so the
polynomial is implemented here twice:

* a classic 256-entry reflected-table byte loop (``_crc_ref``) — the
  reference, and the fast path for short buffers where numpy call
  overhead dominates;
* a vectorized log-reduction (``_crc_vector``) for large buffers.

The vector kernel leans on GF(2) linearity of the CRC register update.
Let ``A`` be the linear operator that advances the register past one
zero byte.  For a message split into equal chunks ``X || Y`` with
``len(Y) == L``::

    pure(X || Y) = A^L(pure(X)) ^ pure(Y)

where ``pure`` is the raw register fed from an all-zero initial state.
Each byte's level-0 ``pure`` is a single table gather, and ``ceil(log2
n)`` pairwise combines reduce the whole buffer.  ``A^(2^j)`` is applied
via four 256-entry byte-slice tables (built once per level and cached),
so a combine is ~a dozen numpy ops regardless of width.  The init /
xor-out convention is restored at the end with ``A^n`` applied to the
initial register by binary decomposition of ``n``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

_POLY = 0x82F63B78  # reflected Castagnoli
_MASK = 0xFFFFFFFF

# Below this many bytes the plain byte loop beats the numpy kernel.
VECTOR_MIN_BYTES = 1024


def _build_table() -> List[int]:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE: List[int] = _build_table()
_TABLE_NP = np.array(_TABLE, dtype=np.uint32)


def _crc_ref(buf: bytes, reg: int) -> int:
    """Raw register update over *buf* (no init/xor-out), byte at a time."""
    table = _TABLE
    for b in buf:
        reg = (reg >> 8) ^ table[(reg ^ b) & 0xFF]
    return reg


# ---------------------------------------------------------------------------
# Linear-operator machinery: A^(2^j) as 32 column vectors + byte-slice tables.
# ---------------------------------------------------------------------------

Matrix = Tuple[int, ...]  # 32 columns; col[k] = op(1 << k)


def _apply(mat: Matrix, value: int) -> int:
    acc = 0
    for k in range(32):
        if (value >> k) & 1:
            acc ^= mat[k]
    return acc


def _compose(outer: Matrix, inner: Matrix) -> Matrix:
    return tuple(_apply(outer, col) for col in inner)


_SHIFT_MATS: List[Matrix] = []  # _SHIFT_MATS[j] == A^(2^j)
_LEVEL_TABLES: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}


def _shift_mat(j: int) -> Matrix:
    while len(_SHIFT_MATS) <= j:
        if not _SHIFT_MATS:
            base = tuple(_crc_ref(b"\x00", 1 << k) for k in range(32))
            _SHIFT_MATS.append(base)
        else:
            prev = _SHIFT_MATS[-1]
            _SHIFT_MATS.append(_compose(prev, prev))
    return _SHIFT_MATS[j]


def _level_tables(j: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    cached = _LEVEL_TABLES.get(j)
    if cached is not None:
        return cached
    mat = _shift_mat(j)
    tables = []
    values = np.arange(256, dtype=np.uint32)
    for byte_index in range(4):
        table = np.zeros(256, dtype=np.uint32)
        for bit in range(8):
            col = np.uint32(mat[byte_index * 8 + bit])
            table ^= np.where((values >> np.uint32(bit)) & np.uint32(1), col, np.uint32(0))
        tables.append(table)
    result = (tables[0], tables[1], tables[2], tables[3])
    _LEVEL_TABLES[j] = result
    return result


def _advance(reg: int, nbytes: int) -> int:
    """A^nbytes(reg): advance the raw register past *nbytes* zero bytes."""
    j = 0
    while nbytes:
        if nbytes & 1:
            reg = _apply(_shift_mat(j), reg)
        nbytes >>= 1
        j += 1
    return reg


_PAIR_TABLES: List[np.ndarray] = []  # [PAIR, A^2∘PAIR], 65536 entries each


def _pair_tables() -> List[np.ndarray]:
    # PAIR[x | y << 8] == pure of the two-byte message (x, y); composing with
    # A^2 gives the left half of a four-byte fold.
    if not _PAIR_TABLES:
        v = np.arange(65536, dtype=np.uint32)
        first = _TABLE_NP[v & np.uint32(0xFF)]
        t0, t1, t2, t3 = _level_tables(0)
        shifted = (
            t0[first & np.uint32(0xFF)]
            ^ t1[(first >> np.uint32(8)) & np.uint32(0xFF)]
            ^ t2[(first >> np.uint32(16)) & np.uint32(0xFF)]
            ^ t3[first >> np.uint32(24)]
        )
        pair = shifted ^ _TABLE_NP[v >> np.uint32(8)]
        t0, t1, t2, t3 = _level_tables(1)
        pair2 = (
            t0[pair & np.uint32(0xFF)]
            ^ t1[(pair >> np.uint32(8)) & np.uint32(0xFF)]
            ^ t2[(pair >> np.uint32(16)) & np.uint32(0xFF)]
            ^ t3[pair >> np.uint32(24)]
        )
        _PAIR_TABLES.extend([pair, pair2])
    return _PAIR_TABLES


def _crc_vector(buf: np.ndarray) -> int:
    """``pure`` register of *buf* (all-zero initial state) via log-reduction."""
    n = buf.shape[0]
    width = 1 << (n - 1).bit_length()
    if width != n:
        # Leading zero bytes leave the raw register unchanged (pure(0^k || M)
        # == pure(M)), so front-padding to a power of two is free.
        buf = np.concatenate([np.zeros(width - n, dtype=np.uint8), buf])
    if width >= 4:
        # Fold four message bytes per element with two 64K-entry gathers,
        # entering the pairwise reduction at level 2.
        pair, pair2 = _pair_tables()
        words = buf.view("<u4")
        pure = pair2[words & np.uint32(0xFFFF)] ^ pair[words >> np.uint32(16)]
        j = 2
    else:
        pure = _TABLE_NP[buf]
        j = 0
    while pure.shape[0] > 1:
        left = pure[0::2]
        right = pure[1::2]
        t0, t1, t2, t3 = _level_tables(j)
        shifted = (
            t0[left & np.uint32(0xFF)]
            ^ t1[(left >> np.uint32(8)) & np.uint32(0xFF)]
            ^ t2[(left >> np.uint32(16)) & np.uint32(0xFF)]
            ^ t3[left >> np.uint32(24)]
        )
        pure = shifted ^ right
        j += 1
    return int(pure[0])


def _as_bytes_view(data) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if not data.flags["C_CONTIGUOUS"]:
            data = np.ascontiguousarray(data)
        return data.view(np.uint8).ravel()
    return np.frombuffer(memoryview(data).cast("B"), dtype=np.uint8)


def crc32c(data, value: int = 0) -> int:
    """CRC32C of *data*, chained from *value* (zlib-style streaming).

    ``crc32c(b, crc32c(a)) == crc32c(a + b)``.  Accepts any bytes-like
    object or numpy array (checksummed over its raw contiguous bytes).
    """
    buf = _as_bytes_view(data)
    n = buf.shape[0]
    if n == 0:
        return value & _MASK
    reg = (value ^ _MASK) & _MASK
    if n < VECTOR_MIN_BYTES:
        reg = _crc_ref(buf.tobytes(), reg)
    else:
        reg = _crc_vector(buf) ^ _advance(reg, n)
    return (reg ^ _MASK) & _MASK


def crc32c_reference(data, value: int = 0) -> int:
    """Byte-loop reference implementation (used by tests to cross-check)."""
    buf = _as_bytes_view(data).tobytes()
    if not buf:
        return value & _MASK
    return (_crc_ref(buf, (value ^ _MASK) & _MASK) ^ _MASK) & _MASK
