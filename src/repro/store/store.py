"""ZoneStore: crash-consistent orchestration of WAL + segments.

Directory layout::

    <dir>/wal.rzw                   the append-only pattern WAL
    <dir>/segment-<seq>.rzs         compacted checksummed segments
    <dir>/*.quarantined-*           corrupt files set aside, never deleted

Recovery state machine (runs in :meth:`ZoneStore.open`):

1. Walk segments newest-first.  A segment that fails framing or any
   per-class body CRC is **quarantined** (renamed aside) and the next
   older one is tried; with no valid segment the state is rebuilt from
   the full WAL.
2. Validate the WAL header.  An unreadable WAL is quarantined and a
   fresh one is started with ``base`` = the chosen segment's
   ``wal_offset``, keeping logical offsets monotonic.
3. Scan the WAL tail from the chosen segment's ``wal_offset``.  A torn
   tail (crash mid-append) is detected by length/CRC validation and
   truncated back to the last valid record.
4. State = segment bodies + replay of the WAL tail records (inserts are
   set-union, γ / epoch are last-wins), which makes replay idempotent:
   every crash window of compaction — tmp file half written, crash
   between ``os.replace`` and old-segment cleanup — recovers to the
   same state.

Nothing is ever accepted unchecked: every WAL record and every segment
class body is CRC32C-verified before its bytes reach a zone.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.store import wal as wal_mod
from repro.store.segment import (
    SegmentError,
    SegmentFile,
    list_segments,
    write_segment,
)
from repro.store.wal import (
    GammaRecord,
    InsertRecord,
    MetaRecord,
    PatternWAL,
    SnapshotRecord,
    WALError,
    fsync_policy,
)

WAL_NAME = "wal.rzw"

ENV_AUTO_COMPACT = "REPRO_STORE_AUTO_COMPACT"


class StoreError(Exception):
    """Misuse or inconsistent request against the store."""


class StoreCorruptionError(StoreError):
    """Checksummed data failed validation and no fallback recovered it."""


@dataclass
class RecoveredState:
    """The replayed zone state: monitor config + per-class packed rows."""

    meta: dict
    gamma: int
    epoch: int
    wal_offset: int
    class_rows: Dict[int, np.ndarray]
    segment_seq: Optional[int] = None
    snapshot_counts: Dict[int, int] = field(default_factory=dict)
    #: Per-class rows from the newest valid segment only — compaction
    #: wrote them with ``np.unique(axis=0)``, so they are deduplicated
    #: and in lexicographic byte order (the bitset backend's sort-free
    #: cold-start ingest relies on exactly this).
    segment_rows: Dict[int, np.ndarray] = field(default_factory=dict)
    #: Per-class rows replayed from the WAL tail (raw append order,
    #: duplicates possible).
    tail_rows: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def row_bytes(self) -> int:
        return (int(self.meta["pattern_width"]) + 7) // 8

    def dedup_counts(self) -> Dict[int, int]:
        """Per-class distinct row counts (insert replay is raw append)."""
        return {
            c: (0 if rows.size == 0 else len(np.unique(rows, axis=0)))
            for c, rows in self.class_rows.items()
        }


class ZoneStore:
    """One durable zone store directory (WAL + segments + quarantine).

    Open an existing directory (recovering to a consistent state) with
    :meth:`open`; the constructor is an alias.  New stores start
    uninitialized until a monitor writes its META record via
    :meth:`initialize` (usually through ``monitor.attach_store``).
    """

    def __init__(
        self,
        directory,
        fsync: Optional[str] = None,
        auto_compact_bytes: Optional[int] = None,
    ):
        self.directory = os.fspath(directory)
        self.fsync = fsync_policy(fsync)
        if auto_compact_bytes is None:
            raw = os.environ.get(ENV_AUTO_COMPACT, "")
            auto_compact_bytes = int(raw) if raw else 0
        #: Compact when the WAL tail past the newest segment exceeds this
        #: many bytes (0 disables auto-compaction).
        self.auto_compact_bytes = int(auto_compact_bytes)
        #: Human-readable recovery actions taken while opening.
        self.recovery_events: List[str] = []
        os.makedirs(self.directory, exist_ok=True)
        self._segment: Optional[SegmentFile] = None
        self._recover()

    @classmethod
    def open(
        cls,
        directory,
        fsync: Optional[str] = None,
        auto_compact_bytes: Optional[int] = None,
    ) -> "ZoneStore":
        return cls(directory, fsync=fsync, auto_compact_bytes=auto_compact_bytes)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _quarantine(self, path: str, why: str) -> None:
        target = path + ".quarantined"
        n = 0
        while os.path.exists(target):
            n += 1
            target = f"{path}.quarantined-{n}"
        os.replace(path, target)
        self.recovery_events.append(
            f"quarantined {os.path.basename(path)} -> "
            f"{os.path.basename(target)}: {why}"
        )

    def _pick_segment(self) -> Optional[SegmentFile]:
        for path in list_segments(self.directory):
            try:
                candidate = SegmentFile(path)
            except SegmentError as exc:
                self._quarantine(path, str(exc))
                continue
            bad_classes = candidate.verify()
            if bad_classes:
                candidate.close()
                self._quarantine(
                    path, f"class body checksum mismatch for classes {bad_classes}"
                )
                continue
            return candidate
        return None

    def _recover(self) -> None:
        self._segment = self._pick_segment()
        wal_path = os.path.join(self.directory, WAL_NAME)
        base = self._segment.wal_offset if self._segment is not None else 0
        try:
            self._wal = PatternWAL(wal_path, fsync=self.fsync)
        except WALError as exc:
            # Unreadable header: the file cannot even be framed.  Set it
            # aside and restart logical offsets at the segment cursor so
            # existing segments stay valid.
            self._quarantine(wal_path, str(exc))
            self._wal = PatternWAL(wal_path, fsync=self.fsync, base=base)
        # Replay starts at the newest valid segment's cursor: records
        # before it are folded into the segment bodies already.
        scan = self._wal.scan(start=max(base, self._wal.base))
        if not scan.clean:
            cut = self._wal.repair(scan)
            self.recovery_events.append(
                f"truncated {cut} torn WAL byte(s): {scan.reason}"
            )
        self._tail_records = list(scan.records)
        self._meta: Optional[dict] = (
            dict(self._segment.meta) if self._segment is not None else None
        )
        self._gamma = self._segment.gamma if self._segment is not None else 0
        self._epoch = (  # lint: disable=epoch-monotonicity -- recovery bootstrap from the newest durable segment
            self._segment.epoch if self._segment is not None else 0
        )
        self._snapshot_counts: Dict[int, int] = {}
        for record in self._tail_records:
            self._fold(record)

    def _fold(self, record) -> None:
        if isinstance(record, MetaRecord):
            if self._meta is None:
                self._meta = dict(record.meta)
                self._gamma = int(record.meta.get("gamma", self._gamma))
        elif isinstance(record, GammaRecord):
            self._gamma = record.gamma
        elif isinstance(record, SnapshotRecord):
            self._epoch = record.epoch  # lint: disable=epoch-monotonicity -- WAL replay is last-wins by append order
            self._gamma = record.gamma
            self._snapshot_counts = dict(record.counts)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def initialized(self) -> bool:
        return self._meta is not None

    @property
    def meta(self) -> dict:
        if self._meta is None:
            raise StoreError(f"{self.directory}: store holds no monitor yet")
        return dict(self._meta)

    @property
    def gamma(self) -> int:
        return self._gamma

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def row_bytes(self) -> int:
        return (int(self.meta["pattern_width"]) + 7) // 8

    @property
    def wal_offset(self) -> int:
        return self._wal.offset

    @property
    def segment_seq(self) -> Optional[int]:
        return self._segment.seq if self._segment is not None else None

    @property
    def wal_tail_bytes(self) -> int:
        """WAL bytes appended since the newest segment's cursor."""
        start = self._segment.wal_offset if self._segment is not None else 0
        return max(0, self._wal.offset - start)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def initialize(self, meta: dict) -> None:
        """Record the monitor config; first write of a fresh store."""
        if self._meta is not None:
            raise StoreError(
                f"{self.directory}: store already initialized; "
                "open() recovers the existing monitor"
            )
        required = ("layer_width", "classes", "pattern_width")
        missing = [k for k in required if k not in meta]
        if missing:
            raise StoreError(f"store meta missing keys {missing}")
        record = MetaRecord(self._wal.append_meta(meta), dict(meta))
        self._tail_records.append(record)
        self._fold(record)

    def _require_init(self) -> None:
        if self._meta is None:
            raise StoreError(
                f"{self.directory}: store not initialized (no META record)"
            )

    def append_insert(self, class_id: int, packed_rows: np.ndarray) -> None:
        """Log fresh packed-bit rows for one class."""
        self._require_init()
        packed_rows = np.ascontiguousarray(packed_rows, dtype=np.uint8)
        if packed_rows.ndim != 2 or packed_rows.shape[1] != self.row_bytes:
            raise StoreError(
                f"insert rows must be (N, {self.row_bytes}) packed bytes, "
                f"got shape {packed_rows.shape}"
            )
        if packed_rows.shape[0] == 0:
            return
        offset = self._wal.append_insert(class_id, packed_rows)
        self._tail_records.append(
            InsertRecord(offset, int(class_id), packed_rows.tobytes())
        )

    def append_gamma(self, gamma: int) -> None:
        self._require_init()
        offset = self._wal.append_gamma(gamma)
        record = GammaRecord(offset, int(gamma))
        self._tail_records.append(record)
        self._fold(record)

    def append_snapshot(
        self, epoch: int, gamma: int, counts: Dict[int, int]
    ) -> None:
        """Durably mark a published ZoneSnapshot (fsync'd by default)."""
        self._require_init()
        offset = self._wal.append_snapshot(epoch, gamma, counts)
        record = SnapshotRecord(offset, int(epoch), int(gamma), dict(counts))
        self._tail_records.append(record)
        self._fold(record)
        self.maybe_compact()

    def flush(self, sync: bool = False) -> None:
        self._wal.flush(sync=sync)

    # ------------------------------------------------------------------
    # state assembly
    # ------------------------------------------------------------------
    def state(self) -> RecoveredState:
        """Assemble the replayed state: segment bodies + WAL tail.

        Insert rows are raw appends (duplicates possible — zone backends
        and compaction deduplicate); γ and epoch are last-wins.
        """
        self._require_init()
        row_bytes = self.row_bytes
        empty = np.zeros((0, row_bytes), dtype=np.uint8)
        segment_rows: Dict[int, np.ndarray] = {}
        tail_parts: Dict[int, List[np.ndarray]] = {}
        if self._segment is not None:
            for class_id in self._segment.classes:
                rows = self._segment.rows(class_id)
                if rows.size:
                    segment_rows[class_id] = rows
        for record in self._tail_records:
            if isinstance(record, InsertRecord):
                rows = record.as_array(row_bytes)
                if rows.size:
                    tail_parts.setdefault(record.class_id, []).append(rows)
        tail_rows = {
            c: np.concatenate(chunks, axis=0) for c, chunks in tail_parts.items()
        }
        class_rows = {}
        for c in {int(c) for c in self._meta["classes"]} | set(
            segment_rows
        ) | set(tail_rows):
            chunks = []
            if c in segment_rows:
                chunks.append(segment_rows[c])
            if c in tail_rows:
                chunks.append(tail_rows[c])
            class_rows[c] = (
                np.concatenate(chunks, axis=0) if chunks else empty
            )
        return RecoveredState(
            meta=self.meta,
            gamma=self._gamma,
            epoch=self._epoch,
            wal_offset=self._wal.offset,
            class_rows=class_rows,
            segment_seq=self.segment_seq,
            snapshot_counts=dict(self._snapshot_counts),
            segment_rows=segment_rows,
            tail_rows=tail_rows,
        )

    def _dedup_counts_before(self, offset: int) -> Dict[int, int]:
        """Per-class dedup counts replaying only records below *offset*
        (segment bodies always count: they fold records below the
        segment cursor, which never exceeds a tail marker's offset)."""
        row_bytes = self.row_bytes
        parts: Dict[int, List[np.ndarray]] = {}
        if self._segment is not None:
            for class_id in self._segment.classes:
                rows = self._segment.rows(class_id)
                if rows.size:
                    parts.setdefault(class_id, []).append(rows)
        for record in self._tail_records:
            if isinstance(record, InsertRecord) and record.offset < offset:
                rows = record.as_array(row_bytes)
                if rows.size:
                    parts.setdefault(record.class_id, []).append(rows)
        return {
            c: int(len(np.unique(np.concatenate(chunks, axis=0), axis=0)))
            for c, chunks in parts.items()
        }

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self, keep_segments: int = 1) -> str:
        """Fold segment + WAL tail into a new segment (atomic replace).

        The WAL is left untouched — it remains the ground truth that a
        corrupt segment is rebuilt from — and up to *keep_segments*
        previous generations are retained as additional fallbacks.
        """
        self._require_init()
        state = self.state()
        dedup = {
            c: (rows if rows.size == 0 else np.unique(rows, axis=0))
            for c, rows in state.class_rows.items()
        }
        seq = (self._segment.seq + 1) if self._segment is not None else 1
        path = write_segment(
            self.directory,
            seq=seq,
            meta=state.meta,
            epoch=state.epoch,
            gamma=state.gamma,
            wal_offset=state.wal_offset,
            class_rows=dedup,
            row_bytes=state.row_bytes,
            fsync=self.fsync != wal_mod.FSYNC_NEVER,
        )
        if self._segment is not None:
            # state.segment_rows are zero-copy views into the old
            # mapping; drop them (dedup above copied what we need) so
            # the mmap can actually close.
            state.segment_rows = {}
            state.class_rows = {}
            self._segment.close()
        self._segment = SegmentFile(path)
        survivors = {path} | set(list_segments(self.directory)[: keep_segments + 1])
        for old in list_segments(self.directory):
            if old not in survivors:
                os.unlink(old)
        # Records at offsets the new segment covers are no longer needed
        # for state assembly (META is kept: it also serves fresh WALs).
        self._tail_records = [
            r
            for r in self._tail_records
            if r.offset >= state.wal_offset or isinstance(r, MetaRecord)
        ]
        return path

    def maybe_compact(self) -> Optional[str]:
        """Auto-compact when the WAL tail exceeds the configured budget."""
        if self.auto_compact_bytes and self.wal_tail_bytes > self.auto_compact_bytes:
            return self.compact()
        return None

    # ------------------------------------------------------------------
    # verification / info
    # ------------------------------------------------------------------
    def verify(self) -> dict:
        """Re-validate every artifact from disk; returns a report dict.

        ``ok`` is true when every segment frames and checksums cleanly
        and the WAL has no torn tail.  Counts from the latest snapshot
        marker are cross-checked against the replayed dedup counts.
        """
        report: dict = {
            "directory": self.directory,
            "segments": [],
            "ok": True,
        }
        for path in list_segments(self.directory):
            entry: dict = {"path": os.path.basename(path)}
            try:
                seg = SegmentFile(path)
            except SegmentError as exc:
                entry.update(valid=False, error=str(exc))
                report["ok"] = False
            else:
                bad = seg.verify()
                entry.update(
                    valid=not bad,
                    seq=seg.seq,
                    epoch=seg.epoch,
                    gamma=seg.gamma,
                    wal_offset=seg.wal_offset,
                    rows={c: seg.row_count(c) for c in seg.classes},
                )
                if bad:
                    entry["corrupt_classes"] = bad
                    report["ok"] = False
                seg.close()
            report["segments"].append(entry)
        scan = self._wal.scan(start=self._wal.base)
        report["wal"] = {
            "path": WAL_NAME,
            "base": self._wal.base,
            "records": len(scan.records),
            "valid_end": scan.valid_end,
            "torn_bytes": scan.torn_bytes,
            "reason": scan.reason,
        }
        if not scan.clean:
            report["ok"] = False
        if self.initialized:
            state = self.state()
            report["counts"] = {
                int(c): int(n) for c, n in state.dedup_counts().items()
            }
            marker_offsets = [
                r.offset
                for r in self._tail_records
                if isinstance(r, SnapshotRecord)
            ]
            if state.snapshot_counts and marker_offsets:
                # The marker recorded counts as of its own offset —
                # inserts logged after it are expected surplus, so the
                # cross-check replays only up to the marker.  A marker
                # already folded into a segment leaves the tail and is
                # covered by the segment's own body checksums instead.
                at_marker = self._dedup_counts_before(max(marker_offsets))
                mismatched = {
                    c: (state.snapshot_counts[c], at_marker.get(c, 0))
                    for c in state.snapshot_counts
                    if state.snapshot_counts[c] != at_marker.get(c, 0)
                }
                report["snapshot_counts_match"] = not mismatched
                if mismatched:
                    report["snapshot_count_mismatches"] = {
                        str(c): {"marker": m, "replayed": r}
                        for c, (m, r) in mismatched.items()
                    }
                    report["ok"] = False
        report["quarantined"] = sorted(
            n for n in os.listdir(self.directory) if ".quarantined" in n
        )
        return report

    def info(self) -> dict:
        """Cheap structural summary (no body re-verification)."""
        info: dict = {
            "directory": self.directory,
            "initialized": self.initialized,
            "epoch": self._epoch,
            "gamma": self._gamma,
            "wal_offset": self._wal.offset,
            "wal_tail_bytes": self.wal_tail_bytes,
            "segment_seq": self.segment_seq,
            "fsync": self.fsync,
            "auto_compact_bytes": self.auto_compact_bytes,
            "recovery_events": list(self.recovery_events),
        }
        if self.initialized:
            meta = self.meta
            info["classes"] = [int(c) for c in meta["classes"]]
            info["pattern_width"] = int(meta["pattern_width"])
            counts: Dict[int, int] = {int(c): 0 for c in meta["classes"]}
            if self._segment is not None:
                for c in self._segment.classes:
                    counts[c] = self._segment.row_count(c)
            tail_rows = {int(c): 0 for c in counts}
            for record in self._tail_records:
                if isinstance(record, InsertRecord):
                    tail_rows.setdefault(record.class_id, 0)
                    tail_rows[record.class_id] += len(record.rows) // self.row_bytes
            info["segment_rows"] = counts
            info["wal_tail_rows"] = tail_rows
        return info

    def close(self) -> None:
        self._wal.close()
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def __enter__(self) -> "ZoneStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ZoneStore({self.directory!r}, epoch={self._epoch}, "
            f"gamma={self._gamma}, segment={self.segment_seq}, "
            f"wal_offset={self._wal.offset})"
        )
