"""Neural-network modules: the layer types Table I of the paper uses.

The :class:`Module` base class provides parameter discovery, train/eval mode
switching, and *forward hooks* — the mechanism the monitor uses to tap the
activations of the monitored layer without modifying the network.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor

ForwardHook = Callable[["Module", Tensor, Tensor], None]


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self.training = True
        self._hooks: List[ForwardHook] = []

    # -- forward ---------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        out = self.forward(x)
        for hook in self._hooks:
            hook(self, x, out)
        return out

    def register_forward_hook(self, hook: ForwardHook) -> Callable[[], None]:
        """Attach ``hook(module, input, output)``; returns a remover."""
        self._hooks.append(hook)

        def remove() -> None:
            if hook in self._hooks:
                self._hooks.remove(hook)

        return remove

    # -- parameter / module discovery -------------------------------------
    def parameters(self) -> Iterator[Tensor]:
        """Yield every trainable tensor in this module and its children."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(dotted_name, tensor)`` pairs for all trainable tensors."""
        for name, value in vars(self).items():
            if isinstance(value, Tensor) and value.requires_grad:
                yield f"{prefix}{name}", value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{prefix}{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{prefix}{name}.{i}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        for _, module in self.named_modules():
            yield module

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs for self and descendants."""
        yield prefix.rstrip("."), self
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{prefix}{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{prefix}{name}.{i}.")

    # -- state -------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy all trainable parameters and buffers into a flat dict."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for mod_name, module in self.named_modules():
            for buf_name, buf in module._buffers().items():
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                state[key] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers previously produced by state_dict."""
        params = dict(self.named_parameters())
        consumed = set()
        for name, param in params.items():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            if state[name].shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{state[name].shape} vs {param.data.shape}"
                )
            param.data[...] = state[name]
            consumed.add(name)
        for mod_name, module in self.named_modules():
            for buf_name, buf in module._buffers().items():
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                if key in state:
                    buf[...] = state[key]
                    consumed.add(key)
        extra = set(state) - consumed
        if extra:
            raise KeyError(f"unexpected keys in state dict: {sorted(extra)}")

    def _buffers(self) -> Dict[str, np.ndarray]:
        """Non-trainable persistent arrays (overridden by BatchNorm)."""
        return {}

    # -- modes --------------------------------------------------------------
    def train(self) -> "Module":
        """Switch self and all children to training mode."""
        for _, module in self.named_modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch self and all children to inference mode."""
        for _, module in self.named_modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b`` (the paper's ``fc(n)``)."""

    def __init__(self, in_features: int, out_features: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.kaiming_uniform((out_features, in_features), in_features, rng),
            requires_grad=True,
            name="weight",
        )
        self.bias = Tensor(
            init.uniform_bias((out_features,), in_features, rng),
            requires_grad=True,
            name="bias",
        )

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight.transpose() + self.bias

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Conv2d(Module):
    """2-D convolution (``Conv(n)`` in Table I: kernel 5x5, stride 1)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 5,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
            ),
            requires_grad=True,
            name="weight",
        )
        self.bias = Tensor(init.uniform_bias((out_channels,), fan_in, rng), requires_grad=True, name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=(self.stride, self.stride), padding=self.padding
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class MaxPool2d(Module):
    """Max pooling (``MaxPool`` in Table I: 2x2, stride 2)."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class ReLU(Module):
    """Rectified linear unit — the layer whose on/off pattern is monitored."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Flatten(Module):
    """Collapse all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def __repr__(self) -> str:
        return "Flatten()"


class BatchNorm2d(Module):
    """Batch normalisation over channels (``BN`` in Table I's GTSRB net)."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Tensor(np.ones((1, num_features, 1, 1)), requires_grad=True, name="gamma")
        self.beta = Tensor(np.zeros((1, num_features, 1, 1)), requires_grad=True, name="beta")
        self.running_mean = np.zeros((1, num_features, 1, 1))
        self.running_var = np.ones((1, num_features, 1, 1))

    def _buffers(self) -> Dict[str, np.ndarray]:
        return {"running_mean": self.running_mean, "running_var": self.running_var}

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            self.running_mean *= 1.0 - self.momentum
            self.running_mean += self.momentum * mean.data
            self.running_var *= 1.0 - self.momentum
            self.running_var += self.momentum * var.data
            x_hat = centered * (var + self.eps) ** -0.5
        else:
            x_hat = (x - Tensor(self.running_mean)) * Tensor(
                (self.running_var + self.eps) ** -0.5
            )
        return x_hat * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class Sequential(Module):
    """Run submodules in order; supports indexing and named access."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"
