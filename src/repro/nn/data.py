"""Dataset and batching utilities (the PyTorch ``torch.utils.data`` analogue).

Everything takes an explicit seed/generator: the paper's evaluation protocol
(train split -> monitor construction; validation split -> gamma calibration
and Table II metrics) must be reproducible.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np


class Dataset:
    """Abstract indexed dataset of ``(input, label)`` pairs."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """In-memory dataset over parallel input/label arrays."""

    def __init__(self, inputs: np.ndarray, labels: np.ndarray):
        inputs = np.asarray(inputs)
        labels = np.asarray(labels)
        if len(inputs) != len(labels):
            raise ValueError(
                f"inputs ({len(inputs)}) and labels ({len(labels)}) differ in length"
            )
        self.inputs = inputs
        self.labels = labels

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.inputs[index], int(self.labels[index])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the full underlying ``(inputs, labels)`` arrays."""
        return self.inputs, self.labels


class Subset(Dataset):
    """A view of a dataset restricted to a list of indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.dataset[self.indices[index]]


def random_split(
    dataset: Dataset, fractions: Sequence[float], seed: int = 0
) -> List[Subset]:
    """Split a dataset into disjoint random subsets by fraction.

    Fractions must sum to 1 (within rounding); the last split absorbs the
    remainder so every example is assigned exactly once.
    """
    if any(f < 0 for f in fractions):
        raise ValueError(f"fractions must be non-negative, got {fractions}")
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ValueError(f"fractions must sum to 1, got {sum(fractions)}")
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(len(dataset))
    splits: List[Subset] = []
    start = 0
    for i, fraction in enumerate(fractions):
        if i == len(fractions) - 1:
            end = len(dataset)
        else:
            end = start + int(round(fraction * len(dataset)))
        splits.append(Subset(dataset, permutation[start:end].tolist()))
        start = end
    return splits


def stack_dataset(dataset: Dataset) -> Tuple[np.ndarray, np.ndarray]:
    """Materialise any dataset into dense ``(inputs, labels)`` arrays."""
    if isinstance(dataset, ArrayDataset):
        return dataset.arrays()
    inputs, labels = [], []
    for i in range(len(dataset)):
        x, y = dataset[i]
        inputs.append(x)
        labels.append(y)
    return np.stack(inputs), np.asarray(labels, dtype=np.int64)


class DataLoader:
    """Mini-batch iterator with optional shuffling.

    Yields ``(inputs, labels)`` numpy batch pairs; re-iterable, reshuffling
    with a fresh stream each epoch (deterministically derived from ``seed``).
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        seed: int = 0,
        drop_last: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._seed = seed
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        if self.shuffle:
            rng = np.random.default_rng((self._seed, self._epoch))
            order = rng.permutation(n)
            self._epoch += 1
        else:
            order = np.arange(n)
        for start in range(0, n, self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            xs, ys = zip(*(self.dataset[int(i)] for i in indices))
            yield np.stack(xs), np.asarray(ys, dtype=np.int64)
