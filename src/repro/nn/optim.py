"""First-order optimisers: SGD with momentum, and Adam."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base class: owns the parameter list and the zero_grad/step protocol."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; subclasses must override."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
