"""Activation taps: capture a layer's output during forward passes.

The monitor never modifies the network — it observes the monitored ReLU
layer through a forward hook, exactly as one would with PyTorch hooks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor


class ActivationTap:
    """Record the outputs of one module across forward passes.

    Use as a context manager so the hook is always removed::

        with ActivationTap(model[5]) as tap:
            model(Tensor(batch))
        activations = tap.concatenated()
    """

    def __init__(self, module: Module):
        self.module = module
        self.outputs: List[np.ndarray] = []
        self._remove = None

    def __enter__(self) -> "ActivationTap":
        self.attach()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    def attach(self) -> None:
        """Start recording (no-op if already attached)."""
        if self._remove is not None:
            return

        def hook(_module: Module, _inp: Tensor, out: Tensor) -> None:
            self.outputs.append(out.data.copy())

        self._remove = self.module.register_forward_hook(hook)

    def detach(self) -> None:
        """Stop recording and remove the hook."""
        if self._remove is not None:
            self._remove()
            self._remove = None

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self.outputs.clear()

    def last(self) -> Optional[np.ndarray]:
        """The most recent captured output, or None."""
        return self.outputs[-1] if self.outputs else None

    def concatenated(self) -> np.ndarray:
        """All captured outputs stacked along the batch axis."""
        if not self.outputs:
            raise RuntimeError("no activations captured; run a forward pass first")
        return np.concatenate(self.outputs, axis=0)
