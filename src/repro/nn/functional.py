"""Functional building blocks: im2col convolution, pooling, softmax.

``conv2d`` and ``max_pool2d`` are implemented as autograd *primitives* (one
node each with a hand-written backward) because expressing them through
elementary ops would be prohibitively slow in numpy.  Both match the standard
PyTorch semantics for stride/padding so Table I architectures transfer
one-to-one.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.tensor import Tensor


# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------
def im2col(
    images: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    """Unfold sliding windows into columns.

    Parameters
    ----------
    images:
        ``(N, C, H, W)`` input batch.
    kernel, stride:
        Window height/width and vertical/horizontal step.

    Returns
    -------
    ``(N, C*kh*kw, out_h*out_w)`` array where each column is one receptive
    field, ready for a matmul against flattened filters.
    """
    n, c, h, w = images.shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    stride_n, stride_c, stride_h, stride_w = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(stride_n, stride_c, stride_h, stride_w, stride_h * sh, stride_w * sw),
        writeable=False,
    )
    return windows.reshape(n, c * kh * kw, out_h * out_w)


def col2im(
    columns: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = image_shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    cols = columns.reshape(n, c, kh, kw, out_h, out_w)
    images = np.zeros(image_shape, dtype=columns.dtype)
    for i in range(kh):
        for j in range(kw):
            images[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += cols[
                :, :, i, j, :, :
            ]
    return images


# ----------------------------------------------------------------------
# convolution
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    stride: Tuple[int, int] = (1, 1),
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation, PyTorch ``Conv2d`` semantics.

    ``x`` is ``(N, C_in, H, W)``, ``weight`` is ``(C_out, C_in, kh, kw)``,
    ``bias`` is ``(C_out,)``.
    """
    if padding:
        x = x.pad2d(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input has {c_in} channels, weight expects {c_in_w}")
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    cols = im2col(x.data, (kh, kw), stride)          # (N, C*kh*kw, L)
    flat_w = weight.data.reshape(c_out, -1)          # (C_out, C*kh*kw)
    out = np.einsum("of,nfl->nol", flat_w, cols)     # (N, C_out, L)
    out += bias.data.reshape(1, c_out, 1)
    out = out.reshape(n, c_out, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, c_out, -1)       # (N, C_out, L)
        if weight.requires_grad:
            grad_w = np.einsum("nol,nfl->of", grad_flat, cols)
            weight._accumulate(grad_w.reshape(weight.shape))
        if bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=(0, 2)))
        if x.requires_grad:
            grad_cols = np.einsum("of,nol->nfl", flat_w, grad_flat)
            x._accumulate(col2im(grad_cols, x.shape, (kh, kw), stride))

    return Tensor._make(out, (x, weight, bias), backward)


# ----------------------------------------------------------------------
# pooling
# ----------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel: int = 2, stride: int = None) -> Tensor:
    """Max pooling over ``kernel x kernel`` windows (stride defaults to kernel).

    Trailing rows/columns that do not fill a window are dropped, matching
    PyTorch's default (no ceil mode).
    """
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    sn, sc, sh, sw = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
    argmax = flat.argmax(axis=4)
    out = np.take_along_axis(flat, argmax[..., None], axis=4)[..., 0]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        ki, kj = np.divmod(argmax, kernel)
        n_idx, c_idx, i_idx, j_idx = np.indices((n, c, out_h, out_w))
        rows = i_idx * stride + ki
        cols_ = j_idx * stride + kj
        np.add.at(grad_x, (n_idx, c_idx, rows, cols_), grad)
        x._accumulate(grad_x)

    return Tensor._make(out, (x,), backward)


# ----------------------------------------------------------------------
# classification heads
# ----------------------------------------------------------------------
def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax on a plain array."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax on a plain array."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer labels as one-hot rows."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
