"""Model checkpointing as ``.npz`` archives (no pickle, no framework lock-in)."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.nn.layers import Module

PathLike = Union[str, os.PathLike]


def save_model(model: Module, path: PathLike) -> None:
    """Write every parameter and buffer of ``model`` to an ``.npz`` file."""
    state = model.state_dict()
    np.savez(path, **state)


def load_model(model: Module, path: PathLike) -> Module:
    """Load a checkpoint produced by :func:`save_model` into ``model``.

    The architecture must match: missing/extra/mis-shaped entries raise.
    """
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
    return model
