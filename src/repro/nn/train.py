"""Training loop with metrics history (the paper's "standard training process").

The trainer is intentionally plain: forward, loss, backward, step, with
per-epoch train/validation accuracy so the Table I accuracy rows can be
reported directly from :attr:`Trainer.history`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nn.data import DataLoader, Dataset
from repro.nn.layers import Module
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import Optimizer
from repro.nn.tensor import Tensor


@dataclass
class EpochStats:
    """Metrics recorded after one epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    val_accuracy: Optional[float] = None


@dataclass
class Trainer:
    """Supervised classification trainer.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.layers.Module` mapping inputs to logits.
    optimizer:
        A configured optimiser over ``model.parameters()``.
    loss_fn:
        Defaults to :class:`~repro.nn.losses.CrossEntropyLoss`.
    """

    model: Module
    optimizer: Optimizer
    loss_fn: CrossEntropyLoss = field(default_factory=CrossEntropyLoss)
    history: List[EpochStats] = field(default_factory=list)

    def fit(
        self,
        train_loader: DataLoader,
        epochs: int = 1,
        val_dataset: Optional[Dataset] = None,
        verbose: bool = False,
    ) -> List[EpochStats]:
        """Train for ``epochs`` passes over ``train_loader``."""
        for epoch in range(epochs):
            self.model.train()
            total_loss = 0.0
            total_correct = 0
            total_seen = 0
            for inputs, labels in train_loader:
                x = Tensor(inputs)
                logits = self.model(x)
                loss = self.loss_fn(logits, labels)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                batch = len(labels)
                total_loss += loss.item() * batch
                total_correct += int((logits.data.argmax(axis=1) == labels).sum())
                total_seen += batch
            stats = EpochStats(
                epoch=epoch,
                train_loss=total_loss / max(total_seen, 1),
                train_accuracy=total_correct / max(total_seen, 1),
            )
            if val_dataset is not None:
                stats.val_accuracy = self.evaluate(val_dataset)
            self.history.append(stats)
            if verbose:
                val = f", val_acc={stats.val_accuracy:.4f}" if stats.val_accuracy is not None else ""
                print(
                    f"epoch {epoch}: loss={stats.train_loss:.4f}, "
                    f"train_acc={stats.train_accuracy:.4f}{val}"
                )
        return self.history

    def evaluate(self, dataset: Dataset, batch_size: int = 256) -> float:
        """Return classification accuracy on ``dataset`` in eval mode."""
        from repro.nn.data import stack_dataset

        predictions = predict(self.model, dataset, batch_size=batch_size)
        _, labels = stack_dataset(dataset)
        return float((predictions == labels).mean()) if len(labels) else 0.0


def predict(model: Module, dataset: Dataset, batch_size: int = 256) -> np.ndarray:
    """Predicted class indices for every example, in dataset order."""
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    outputs = [model(Tensor(inputs)).data.argmax(axis=1) for inputs, _ in loader]
    return np.concatenate(outputs) if outputs else np.empty(0, dtype=np.int64)


def predict_logits(model: Module, inputs: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Raw logits for an input batch array, evaluated in chunks."""
    model.eval()
    chunks = [
        model(Tensor(inputs[start : start + batch_size])).data
        for start in range(0, len(inputs), batch_size)
    ]
    return np.concatenate(chunks) if chunks else np.empty((0,))
