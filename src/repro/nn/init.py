"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so that every
experiment in the benchmark harness is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np


def kaiming_uniform(
    shape, fan_in: int, rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He/Kaiming uniform init — the right default for ReLU stacks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init for near-linear activations."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fans must be positive, got {fan_in}, {fan_out}")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def uniform_bias(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape)
