"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``np.ndarray`` and records the operations applied
to it, building a DAG.  Calling :meth:`Tensor.backward` on a scalar result
propagates gradients to every tensor created with ``requires_grad=True``.

The op set is deliberately small — exactly what the paper's architectures
(Table I) and the gradient-based neuron-sensitivity analysis (§II) need:
broadcast arithmetic, matmul, ReLU, exp/log/tanh, reductions, reshape,
transpose, slicing and padding.  Convolution and pooling are primitive ops
with hand-written backward passes in :mod:`repro.nn.functional` for speed.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(np.float64, copy=False)
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions numpy added during broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along dimensions that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Array contents (converted to ``float64``).
    requires_grad:
        Whether gradients should accumulate in :attr:`grad` on backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the wrapped array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the wrapped array."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Number of elements of the wrapped array."""
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the single element as a Python float."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    # ------------------------------------------------------------------
    # graph machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (so a scalar loss needs no argument).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    # ------------------------------------------------------------------
    # arithmetic (broadcasting, with unbroadcast on backward)
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self * other ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    __radd__ = __add__
    __rmul__ = __mul__

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product ``self @ other`` (2-D operands)."""
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        """Elementwise ``max(0, x)`` — the activation the monitor binarises."""
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements by default)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                g = np.expand_dims(g, tuple(a % self.ndim for a in axes))
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Maximum along one axis; gradient flows to the arg-max entries."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(np.float64)
            # Split gradient equally among ties for a well-defined subgradient.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Return a reshaped view of the tensor."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        """Permute dimensions (reverse by default)."""
        axes_tuple = axes if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the two trailing (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding)] * 2
        out_data = np.pad(self.data, pad_width)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sl = [slice(None)] * (self.ndim - 2) + [
                    slice(padding, -padding),
                    slice(padding, -padding),
                ]
                self._accumulate(grad[tuple(sl)])

        return Tensor._make(out_data, (self,), backward)
