"""A compact pure-numpy deep-learning framework (the PyTorch substitute).

Provides reverse-mode autograd (:class:`Tensor`), the layer types used by
the paper's Table I architectures, cross-entropy training, data loading and
checkpointing.  The monitor subpackage observes networks built with these
modules through forward hooks (:class:`ActivationTap`).
"""

from repro.nn.tensor import Tensor
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.nn.extras import AvgPool2d, Dropout, LeakyReLU, Sigmoid, Tanh
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.data import (
    ArrayDataset,
    DataLoader,
    Dataset,
    Subset,
    random_split,
    stack_dataset,
)
from repro.nn.train import EpochStats, Trainer, predict, predict_logits
from repro.nn.serialize import load_model, save_model
from repro.nn.hooks import ActivationTap

__all__ = [
    "Tensor",
    "Module",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "BatchNorm2d",
    "ReLU",
    "Flatten",
    "Sequential",
    "Dropout",
    "AvgPool2d",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "CrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "Dataset",
    "ArrayDataset",
    "Subset",
    "DataLoader",
    "random_split",
    "stack_dataset",
    "Trainer",
    "EpochStats",
    "predict",
    "predict_logits",
    "save_model",
    "load_model",
    "ActivationTap",
]
