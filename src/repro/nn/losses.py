"""Loss functions with analytic gradients.

``CrossEntropyLoss`` operates on raw logits (combined log-softmax + NLL, like
PyTorch) and is implemented as an autograd primitive: the softmax-minus-onehot
gradient is both faster and more numerically stable than composing
elementary ops.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class CrossEntropyLoss:
    """Mean cross-entropy between logits and integer class labels."""

    def __call__(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, C), got shape {logits.shape}")
        n, c = logits.shape
        if labels.shape != (n,):
            raise ValueError(f"labels must be ({n},), got {labels.shape}")
        log_probs = F.log_softmax(logits.data, axis=1)
        loss_value = -log_probs[np.arange(n), labels].mean()

        def backward(grad: np.ndarray) -> None:
            if not logits.requires_grad:
                return
            probs = np.exp(log_probs)
            probs[np.arange(n), labels] -= 1.0
            logits._accumulate(grad * probs / n)

        return Tensor._make(np.asarray(loss_value), (logits,), backward)


class MSELoss:
    """Mean squared error between a tensor and a target array."""

    def __call__(self, prediction: Tensor, target: np.ndarray) -> Tensor:
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"shape mismatch: prediction {prediction.shape} vs target {target.shape}"
            )
        diff = prediction - Tensor(target)
        return (diff * diff).mean()
