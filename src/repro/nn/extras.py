"""Additional layers beyond the paper's Table I needs.

A production framework must cover common architectures: dropout for
regularisation, average pooling, and the usual activation modules.  Note
the monitor's Definition 1 specifically binarises ReLU outputs; leaky and
smooth activations are provided for the substrate's completeness, and the
monitor can still be attached to any ReLU layer in a mixed network.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor


class Dropout(Module):
    """Inverted dropout: active in train mode, identity in eval mode."""

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"drop probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class AvgPool2d(Module):
    """Average pooling over square windows (stride defaults to kernel)."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        sn, sc, sh, sw = x.data.strides
        windows = np.lib.stride_tricks.as_strided(
            x.data,
            shape=(n, c, out_h, out_w, k, k),
            strides=(sn, sc, sh * s, sw * s, sh, sw),
            writeable=False,
        )
        out = windows.mean(axis=(4, 5))

        def backward(grad: np.ndarray) -> None:
            if not x.requires_grad:
                return
            grad_x = np.zeros_like(x.data)
            share = grad / (k * k)
            for i in range(k):
                for j in range(k):
                    grad_x[:, :, i : i + s * out_h : s, j : j + s * out_w : s] += share
            x._accumulate(grad_x)

        return Tensor._make(out, (x,), backward)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class LeakyReLU(Module):
    """Leaky rectifier: ``x if x > 0 else slope * x``."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        if negative_slope < 0:
            raise ValueError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        slope = self.negative_slope
        mask = x.data > 0
        factor = mask + (~mask) * slope
        out = x.data * factor

        def backward(grad: np.ndarray) -> None:
            if x.requires_grad:
                x._accumulate(grad * factor)

        return Tensor._make(out, (x,), backward)

    def __repr__(self) -> str:
        return f"LeakyReLU(slope={self.negative_slope})"


class Tanh(Module):
    """Hyperbolic-tangent activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Sigmoid(Module):
    """Logistic-sigmoid activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"
