"""YOLO-style grid detector (paper §V, extension 1).

A small convolutional backbone followed by a per-cell classification head:
the 64x64 input maps to a 2x2 grid, and each cell predicts one of
``num_classes`` (sign classes + background).  The monitored layer is the
shared fully-connected ReLU layer feeding all cell heads, so one monitor
covers every proposal — mirroring how the paper suggests treating each grid
cell as offering object proposals.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.multiobject import GRID, MultiObjectConfig
from repro.models.registry import ModelSpec, register_model
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, Module, ReLU, Sequential
from repro.nn.tensor import Tensor

MONITORED_WIDTH = 64


class GridDetector(Module):
    """Backbone + shared ReLU trunk + one linear head per grid cell."""

    def __init__(self, num_classes: int, rng: np.random.Generator):
        super().__init__()
        self.num_classes = num_classes
        self.monitored_relu = ReLU()
        self.backbone = Sequential(
            Conv2d(3, 16, kernel_size=5, rng=rng),     # 64 -> 60
            ReLU(),
            MaxPool2d(2),                              # 60 -> 30
            Conv2d(16, 24, kernel_size=5, rng=rng),    # 30 -> 26
            ReLU(),
            MaxPool2d(2),                              # 26 -> 13
            Flatten(),
            Linear(24 * 13 * 13, MONITORED_WIDTH, rng=rng),
        )
        self.heads = [
            Linear(MONITORED_WIDTH, num_classes, rng=rng) for _ in range(GRID * GRID)
        ]

    def forward(self, x: Tensor) -> Tensor:
        """Return logits of shape ``(N, GRID*GRID, num_classes)``.

        Implemented as a concatenation over cell heads applied to the shared
        monitored trunk output.
        """
        trunk = self.monitored_relu(self.backbone(x))
        per_cell = [head(trunk).reshape(x.shape[0], 1, self.num_classes)
                    for head in self.heads]
        out = per_cell[0]
        for cell in per_cell[1:]:
            # Concatenate along the cell axis via stacking on numpy level
            # would detach autograd; instead accumulate with padding trick.
            out = _concat_cells(out, cell)
        return out


def _concat_cells(a: Tensor, b: Tensor) -> Tensor:
    """Autograd-preserving concatenation along axis 1 for (N, K, C) tensors."""
    n, ka, c = a.shape
    _, kb, _ = b.shape
    out_data = np.concatenate([a.data, b.data], axis=1)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad[:, :ka])
        if b.requires_grad:
            b._accumulate(grad[:, ka:])

    return Tensor._make(out_data, (a, b), backward)


@register_model("grid_detector")
def build_grid_detector(
    rng: np.random.Generator, config: MultiObjectConfig = MultiObjectConfig()
) -> ModelSpec:
    """Build the grid detector for the multi-object scene configuration."""
    model = GridDetector(config.num_classes, rng)
    return ModelSpec(
        model=model,
        monitored_module=model.monitored_relu,
        monitored_width=MONITORED_WIDTH,
        num_classes=config.num_classes,
        name="grid_detector",
        output_layer=None,  # several heads share the monitored layer
    )
