"""Network 1 of Table I: the MNIST classifier.

Architecture (kernel 5x5, stride 1, 2x2 max pooling):

    ReLU(Conv(40)), MaxPool, ReLU(Conv(20)), MaxPool,
    ReLU(fc(320)), ReLU(fc(160)), ReLU(fc(80)), **ReLU(fc(40))**, fc(10)

The monitored layer (bold in the paper) is the ReLU after ``fc(40)`` —
40 neurons, comfortably within BDD limits, so all of them are monitored.
"""

from __future__ import annotations

import numpy as np

from repro.models.registry import ModelSpec, register_model
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential

MONITORED_WIDTH = 40
NUM_CLASSES = 10


@register_model("mnist")
def build_mnist_net(rng: np.random.Generator) -> ModelSpec:
    """Build network 1 exactly as Table I specifies.

    Input is ``(N, 1, 28, 28)``: conv(5x5) -> 24, pool -> 12, conv(5x5) -> 8,
    pool -> 4, flatten -> 20*4*4 = 320 features into the fc stack.
    """
    monitored_relu = ReLU()
    output_layer = Linear(MONITORED_WIDTH, NUM_CLASSES, rng=rng)
    model = Sequential(
        Conv2d(1, 40, kernel_size=5, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(40, 20, kernel_size=5, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(320, 320, rng=rng),
        ReLU(),
        Linear(320, 160, rng=rng),
        ReLU(),
        Linear(160, 80, rng=rng),
        ReLU(),
        Linear(80, MONITORED_WIDTH, rng=rng),
        monitored_relu,
        output_layer,
    )
    return ModelSpec(
        model=model,
        monitored_module=monitored_relu,
        monitored_width=MONITORED_WIDTH,
        num_classes=NUM_CLASSES,
        name="mnist",
        output_layer=output_layer,
    )
