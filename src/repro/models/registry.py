"""Model registry: the paper's architectures plus the case-study classifier.

Each builder returns a :class:`ModelSpec` bundling the network, the *module
whose output is monitored* (always a ReLU layer, per Definition 1) and the
width of that layer, so monitor code never hard-codes indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.nn.layers import Module


@dataclass
class ModelSpec:
    """A network plus its monitoring metadata.

    Attributes
    ----------
    model:
        The classifier, mapping inputs to logits.
    monitored_module:
        The ReLU module whose on/off output pattern the monitor records
        (bold layer in the paper's Table I).
    monitored_width:
        Number of neurons in the monitored layer.
    num_classes:
        Output dimensionality.
    name:
        Registry name, used in reports.
    output_layer:
        The final Linear layer; its weights provide the closed-form
        gradient sensitivity when the monitored layer is penultimate
        (paper §II, last paragraph).
    """

    model: Module
    monitored_module: Module
    monitored_width: int
    num_classes: int
    name: str
    output_layer: Optional[Module] = None


_BUILDERS: Dict[str, Callable[..., ModelSpec]] = {}


def register_model(name: str) -> Callable:
    """Decorator registering a ModelSpec builder under ``name``."""

    def decorator(builder: Callable[..., ModelSpec]) -> Callable[..., ModelSpec]:
        if name in _BUILDERS:
            raise ValueError(f"model {name!r} already registered")
        _BUILDERS[name] = builder
        return builder

    return decorator


def build_model(name: str, seed: int = 0, **kwargs) -> ModelSpec:
    """Instantiate a registered model with a seeded RNG."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {sorted(_BUILDERS)}")
    return _BUILDERS[name](rng=np.random.default_rng(seed), **kwargs)


def available_models() -> list:
    """Names of all registered architectures."""
    return sorted(_BUILDERS)
