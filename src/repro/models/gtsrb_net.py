"""Network 2 of Table I: the GTSRB classifier.

Architecture (kernel 5x5, stride 1, 2x2 max pooling, batch norm):

    ReLU(BN(Conv(40))), MaxPool, ReLU(BN(Conv(20))), MaxPool,
    ReLU(fc(240)), **ReLU(fc(84))**, fc(43)

The monitored layer is the ReLU after ``fc(84)``; the paper monitors only
25% of its 84 neurons, chosen by gradient-based sensitivity, and builds the
monitor for the stop-sign class (c = 14) only.
"""

from __future__ import annotations

import numpy as np

from repro.models.registry import ModelSpec, register_model
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)

MONITORED_WIDTH = 84
NUM_CLASSES = 43


@register_model("gtsrb")
def build_gtsrb_net(rng: np.random.Generator, num_classes: int = NUM_CLASSES) -> ModelSpec:
    """Build network 2 exactly as Table I specifies.

    Input is ``(N, 3, 32, 32)``: conv(5x5) -> 28, pool -> 14, conv(5x5) -> 10,
    pool -> 5, flatten -> 20*5*5 = 500 features into the fc stack.
    ``num_classes`` may be lowered alongside the dataset's class subset for
    fast tests.
    """
    monitored_relu = ReLU()
    output_layer = Linear(MONITORED_WIDTH, num_classes, rng=rng)
    model = Sequential(
        Conv2d(3, 40, kernel_size=5, rng=rng),
        BatchNorm2d(40),
        ReLU(),
        MaxPool2d(2),
        Conv2d(40, 20, kernel_size=5, rng=rng),
        BatchNorm2d(20),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(500, 240, rng=rng),
        ReLU(),
        Linear(240, MONITORED_WIDTH, rng=rng),
        monitored_relu,
        output_layer,
    )
    return ModelSpec(
        model=model,
        monitored_module=monitored_relu,
        monitored_width=MONITORED_WIDTH,
        num_classes=num_classes,
        name="gtsrb",
        output_layer=output_layer,
    )
