"""The paper's network architectures (Table I) and the case-study model."""

from repro.models.registry import ModelSpec, available_models, build_model, register_model
from repro.models.mnist_net import build_mnist_net
from repro.models.gtsrb_net import build_gtsrb_net
from repro.models.frontcar_net import build_frontcar_net
from repro.models.grid_detector import GridDetector, build_grid_detector

__all__ = [
    "GridDetector",
    "build_grid_detector",
    "ModelSpec",
    "build_model",
    "register_model",
    "available_models",
    "build_mnist_net",
    "build_gtsrb_net",
    "build_frontcar_net",
]
