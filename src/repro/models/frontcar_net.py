"""Front-car selection classifier (the paper's §III case study).

The paper describes the selector as a neural-network classifier taking lane
information plus vehicle bounding boxes and emitting a bounding-box index or
the special "no front car" class "]".  We use a compact ReLU MLP over the
scene feature vector; the monitored layer is the last hidden ReLU.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.frontcar import FrontCarConfig
from repro.models.registry import ModelSpec, register_model
from repro.nn.layers import Linear, ReLU, Sequential

MONITORED_WIDTH = 32


@register_model("frontcar")
def build_frontcar_net(
    rng: np.random.Generator, config: FrontCarConfig = FrontCarConfig()
) -> ModelSpec:
    """Build the front-car selector MLP for the given scene configuration."""
    monitored_relu = ReLU()
    output_layer = Linear(MONITORED_WIDTH, config.num_classes, rng=rng)
    model = Sequential(
        Linear(config.feature_dim, 64, rng=rng),
        ReLU(),
        Linear(64, MONITORED_WIDTH, rng=rng),
        monitored_relu,
        output_layer,
    )
    return ModelSpec(
        model=model,
        monitored_module=monitored_relu,
        monitored_width=MONITORED_WIDTH,
        num_classes=config.num_classes,
        name="frontcar",
        output_layer=output_layer,
    )
