"""Reduced ordered binary decision diagrams (ROBDDs).

This subpackage is a from-scratch replacement for the ``dd`` package used in
the paper.  It provides the exact primitives Algorithm 1 of the paper needs —
``emptySet`` (the ``false`` constant), ``or``, ``encode`` (cube encoding of a
bit-vector) and ``exists`` (existential quantification over one variable) —
plus the usual ROBDD toolbox: canonical hash-consed nodes with
*complement edges* (negation is an O(1) edge-bit flip; ``f`` and
``NOT f`` share storage), the ``ite`` operator, restriction, model
counting and enumeration, Hamming-ball expansion, mark-and-sweep
garbage collection of the unique table, dynamic variable reordering by
sifting, and DOT export.

Quick example::

    from repro.bdd import BDDManager

    mgr = BDDManager(3)
    f = mgr.from_pattern([1, 0, 1])        # the single pattern 101
    g = mgr.exists(f, 1)                   # patterns 1-1 (don't-care bit 1)
    assert mgr.contains(g, [1, 1, 1])
    assert mgr.sat_count(g) == 2
"""

from repro.bdd.manager import BDDFunction, BDDManager
from repro.bdd.analysis import (
    enumerate_models,
    node_count,
    sat_count,
    zone_statistics,
)
from repro.bdd.dot import to_dot

__all__ = [
    "BDDManager",
    "BDDFunction",
    "sat_count",
    "enumerate_models",
    "node_count",
    "zone_statistics",
    "to_dot",
]
