"""DOT (Graphviz) export for ROBDDs.

Purely textual — no graphviz dependency.  Solid edges are the ``high`` (1)
branch, dashed edges the ``low`` (0) branch, matching the usual BDD drawing
convention.

Two views of a complement-edge diagram:

* the default *semantic* view expands each (node, parity) pair into its
  own drawn node, so the picture shows the plain two-terminal ROBDD the
  function denotes — what the paper's figures draw;
* ``shared=True`` draws the *physical* table: one ``1`` terminal,
  complemented edges rendered dotted with an odot arrowhead, making the
  storage sharing between ``f`` and ``NOT f`` visible.
"""

from __future__ import annotations

from typing import List

from repro.bdd.manager import BDDManager


def to_dot(manager: BDDManager, ref: int, name: str = "bdd",
           shared: bool = False) -> str:
    """Render the BDD rooted at ``ref`` as a DOT digraph string."""
    if shared:
        return _to_dot_shared(manager, ref, name)
    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]
    lines.append('  node0 [label="0", shape=box];')
    lines.append('  node1 [label="1", shape=box];')
    seen = set()
    stack = [ref]
    while stack:
        node = stack.pop()
        if node in seen or manager.is_terminal(node):
            continue
        seen.add(node)
        label = manager.var_names[manager.var_of(node)]
        lines.append(f'  node{node} [label="{label}", shape=circle];')
        low, high = manager.low_of(node), manager.high_of(node)
        lines.append(f"  node{node} -> node{low} [style=dashed];")
        lines.append(f"  node{node} -> node{high} [style=solid];")
        stack.append(low)
        stack.append(high)
    if manager.is_terminal(ref):
        # Point out which terminal the whole function is.
        lines.append(f'  root [label="f", shape=plaintext];')
        lines.append(f"  root -> node{ref};")
    lines.append("}")
    return "\n".join(lines)


def _to_dot_shared(manager: BDDManager, ref: int, name: str) -> str:
    """Physical rendering: node indices, complement edges marked."""
    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]
    lines.append('  node0 [label="1", shape=box];')
    root_style = (
        " [style=dotted, arrowhead=odot]" if manager.is_complemented(ref) else ""
    )
    lines.append('  root [label="f", shape=plaintext];')
    lines.append(f"  root -> node{manager.node_index(ref)}{root_style};")
    seen = set()
    stack = [ref]
    while stack:
        node = stack.pop()
        if manager.is_terminal(node):
            continue
        index = manager.node_index(node)
        if index in seen:
            continue
        seen.add(index)
        label = manager.var_names[manager.var_of(node)]
        lines.append(f'  node{index} [label="{label}", shape=circle];')
        # Draw the stored (regular-sense) edges so complement bits are
        # visible: dashed = low branch, solid = high branch, dotted+odot
        # marks a complemented edge.
        regular = (index << 1) | 1
        for child, style in (
            (manager.low_of(regular), "dashed"),
            (manager.high_of(regular), "solid"),
        ):
            mark = ", arrowhead=odot" if manager.is_complemented(child) else ""
            lines.append(
                f"  node{index} -> node{manager.node_index(child)} "
                f"[style={style}{mark}];"
            )
            stack.append(child)
    lines.append("}")
    return "\n".join(lines)
