"""DOT (Graphviz) export for ROBDDs.

Purely textual — no graphviz dependency.  Solid edges are the ``high`` (1)
branch, dashed edges the ``low`` (0) branch, matching the usual BDD drawing
convention.
"""

from __future__ import annotations

from typing import List

from repro.bdd.manager import BDDManager


def to_dot(manager: BDDManager, ref: int, name: str = "bdd") -> str:
    """Render the BDD rooted at ``ref`` as a DOT digraph string."""
    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]
    lines.append('  node0 [label="0", shape=box];')
    lines.append('  node1 [label="1", shape=box];')
    seen = set()
    stack = [ref]
    while stack:
        node = stack.pop()
        if node in seen or manager.is_terminal(node):
            continue
        seen.add(node)
        label = manager.var_names[manager.level_of(node)]
        lines.append(f'  node{node} [label="{label}", shape=circle];')
        low, high = manager.low_of(node), manager.high_of(node)
        lines.append(f"  node{node} -> node{low} [style=dashed];")
        lines.append(f"  node{node} -> node{high} [style=solid];")
        stack.append(low)
        stack.append(high)
    if manager.is_terminal(ref):
        # Point out which terminal the whole function is.
        lines.append(f'  root [label="f", shape=plaintext];')
        lines.append(f"  root -> node{ref};")
    lines.append("}")
    return "\n".join(lines)
