"""Model counting, enumeration and structural statistics for ROBDDs.

These routines quantify the *coarseness of abstraction* that Figure 2 of the
paper illustrates: ``sat_count`` measures how many activation patterns a
comfort zone contains, ``node_count`` measures how much memory the BDD needs,
and :func:`zone_statistics` bundles both with the density relative to the
full pattern space.

All walks go through the manager's parity-aware accessors
(``low_of``/``high_of`` apply the complement bit), so a complemented ref
behaves exactly like the negated function.  Structural counts
(:func:`node_count`, :func:`support`) count *physical* nodes — under
complement edges ``f`` and ``NOT f`` share storage, so they report the
same size — and :func:`enumerate_models` honours the manager's current
variable order: output rows are always in variable-index order however
the levels have been permuted by reordering.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.bdd.manager import BDDManager


def sat_count(manager: BDDManager, ref: int) -> int:
    """Number of satisfying assignments over all ``manager.num_vars`` variables.

    Exact integer arithmetic (Python ints), so it is safe for the
    200-variable monitors the paper considers, where counts exceed 2**100.
    """
    # Iterative post-order (wide monitors exceed the recursion limit).
    # cache[ref] is the count over variables strictly below its level;
    # refs of opposite parity are cached separately (they denote the
    # complementary functions).
    cache: Dict[int, int] = {BDDManager.FALSE: 0, BDDManager.TRUE: 1}
    stack = [ref]
    while stack:
        node = stack.pop()
        if node in cache:
            continue
        low, high = manager.low_of(node), manager.high_of(node)
        if low in cache and high in cache:
            level = manager.level_of(node)
            low_count = cache[low] << (manager.level_of(low) - level - 1)
            high_count = cache[high] << (manager.level_of(high) - level - 1)
            cache[node] = low_count + high_count
        else:
            stack.append(node)
            if low not in cache:
                stack.append(low)
            if high not in cache:
                stack.append(high)
    return cache[ref] << manager.level_of(ref)


def enumerate_models(manager: BDDManager, ref: int) -> Iterator[Tuple[int, ...]]:
    """Yield every satisfying bit-vector of ``ref`` (full assignments).

    Rows are emitted in variable-index order whatever the current level
    permutation, so enumeration is stable across reorders — the property
    the pattern-payload serialisation round-trip relies on.  Intended
    for tests and small zones; the count grows exponentially with
    don't-care variables, so production code should prefer :func:`sat_count`.
    """
    num_vars = manager.num_vars
    order = manager.var_order()

    def emit(prefix: List[int]) -> Tuple[int, ...]:
        row = [0] * num_vars
        for level, bit in enumerate(prefix):
            row[order[level]] = bit
        return tuple(row)

    def walk(node: int, level: int, prefix: List[int]) -> Iterator[Tuple[int, ...]]:
        if node == BDDManager.FALSE:
            return
        if level == num_vars:
            yield emit(prefix)
            return
        node_level = manager.level_of(node)
        if node_level > level:
            # The variable at `level` is a don't-care here: branch on both.
            for bit in (0, 1):
                prefix.append(bit)
                yield from walk(node, level + 1, prefix)
                prefix.pop()
            return
        for bit, child in ((0, manager.low_of(node)), (1, manager.high_of(node))):
            prefix.append(bit)
            yield from walk(child, level + 1, prefix)
            prefix.pop()

    yield from walk(ref, 0, [])


def node_count(manager: BDDManager, ref: int) -> int:
    """Number of distinct *physical* internal nodes reachable from ``ref``.

    Complement edges make ``node_count(f) == node_count(NOT f)`` — the
    storage-sharing the engine overhaul banks on.
    """
    seen = set()
    stack = [ref]
    while stack:
        node = stack.pop()
        if manager.is_terminal(node):
            continue
        index = manager.node_index(node)
        if index in seen:
            continue
        seen.add(index)
        stack.append(manager.low_of(node))
        stack.append(manager.high_of(node))
    return len(seen)


def support(manager: BDDManager, ref: int) -> List[int]:
    """Sorted list of variable indices the function actually depends on."""
    seen = set()
    variables = set()
    stack = [ref]
    while stack:
        node = stack.pop()
        if manager.is_terminal(node):
            continue
        index = manager.node_index(node)
        if index in seen:
            continue
        seen.add(index)
        variables.add(manager.var_of(node))
        stack.append(manager.low_of(node))
        stack.append(manager.high_of(node))
    return sorted(variables)


def zone_statistics(manager: BDDManager, ref: int) -> Dict[str, float]:
    """Summary statistics of a pattern set (used by the Fig. 2 sweep bench).

    Returns a dict with:

    ``patterns``
        Exact number of patterns in the set.
    ``nodes``
        BDD node count — the storage cost.
    ``density``
        ``patterns / 2**num_vars`` — 0 means no generalisation head-room
        used, 1 means the abstraction has degenerated to "everything visited"
        (the paper's over-generalising α3).
    ``support_size``
        Number of variables the zone actually constrains.
    """
    patterns = sat_count(manager, ref)
    total = 1 << manager.num_vars
    return {
        "patterns": patterns,
        "nodes": node_count(manager, ref),
        "density": patterns / total if total else 0.0,
        "support_size": len(support(manager, ref)),
    }
