"""Model counting, enumeration and structural statistics for ROBDDs.

These routines quantify the *coarseness of abstraction* that Figure 2 of the
paper illustrates: ``sat_count`` measures how many activation patterns a
comfort zone contains, ``node_count`` measures how much memory the BDD needs,
and :func:`zone_statistics` bundles both with the density relative to the
full pattern space.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.bdd.manager import BDDManager


def sat_count(manager: BDDManager, ref: int) -> int:
    """Number of satisfying assignments over all ``manager.num_vars`` variables.

    Exact integer arithmetic (Python ints), so it is safe for the
    200-variable monitors the paper considers, where counts exceed 2**100.
    """
    # Iterative post-order (wide monitors exceed the recursion limit).
    # cache[node] is the count over variables strictly below its level.
    cache: Dict[int, int] = {BDDManager.FALSE: 0, BDDManager.TRUE: 1}
    stack = [ref]
    while stack:
        node = stack.pop()
        if node in cache:
            continue
        low, high = manager.low_of(node), manager.high_of(node)
        if low in cache and high in cache:
            level = manager.level_of(node)
            low_count = cache[low] << (manager.level_of(low) - level - 1)
            high_count = cache[high] << (manager.level_of(high) - level - 1)
            cache[node] = low_count + high_count
        else:
            stack.append(node)
            if low not in cache:
                stack.append(low)
            if high not in cache:
                stack.append(high)
    return cache[ref] << manager.level_of(ref)


def enumerate_models(manager: BDDManager, ref: int) -> Iterator[Tuple[int, ...]]:
    """Yield every satisfying bit-vector of ``ref`` (full assignments).

    Intended for tests and small zones; the count grows exponentially with
    don't-care variables, so production code should prefer :func:`sat_count`.
    """
    num_vars = manager.num_vars

    def walk(node: int, index: int, prefix: List[int]) -> Iterator[Tuple[int, ...]]:
        if node == BDDManager.FALSE:
            return
        if index == num_vars:
            yield tuple(prefix)
            return
        level = manager.level_of(node)
        if level > index:
            # Variable `index` is a don't-care here: branch on both values.
            for bit in (0, 1):
                prefix.append(bit)
                yield from walk(node, index + 1, prefix)
                prefix.pop()
            return
        for bit, child in ((0, manager.low_of(node)), (1, manager.high_of(node))):
            prefix.append(bit)
            yield from walk(child, index + 1, prefix)
            prefix.pop()

    yield from walk(ref, 0, [])


def node_count(manager: BDDManager, ref: int) -> int:
    """Number of distinct internal nodes reachable from ``ref``."""
    seen = set()
    stack = [ref]
    while stack:
        node = stack.pop()
        if node in seen or manager.is_terminal(node):
            continue
        seen.add(node)
        stack.append(manager.low_of(node))
        stack.append(manager.high_of(node))
    return len(seen)


def support(manager: BDDManager, ref: int) -> List[int]:
    """Sorted list of variable indices the function actually depends on."""
    seen = set()
    variables = set()
    stack = [ref]
    while stack:
        node = stack.pop()
        if node in seen or manager.is_terminal(node):
            continue
        seen.add(node)
        variables.add(manager.level_of(node))
        stack.append(manager.low_of(node))
        stack.append(manager.high_of(node))
    return sorted(variables)


def zone_statistics(manager: BDDManager, ref: int) -> Dict[str, float]:
    """Summary statistics of a pattern set (used by the Fig. 2 sweep bench).

    Returns a dict with:

    ``patterns``
        Exact number of patterns in the set.
    ``nodes``
        BDD node count — the storage cost.
    ``density``
        ``patterns / 2**num_vars`` — 0 means no generalisation head-room
        used, 1 means the abstraction has degenerated to "everything visited"
        (the paper's over-generalising α3).
    ``support_size``
        Number of variables the zone actually constrains.
    """
    patterns = sat_count(manager, ref)
    total = 1 << manager.num_vars
    return {
        "patterns": patterns,
        "nodes": node_count(manager, ref),
        "density": patterns / total if total else 0.0,
        "support_size": len(support(manager, ref)),
    }
