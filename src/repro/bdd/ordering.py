"""Variable-ordering heuristics for pattern-set BDDs.

ROBDD size is notoriously sensitive to variable order.  The paper leans on
the ``dd`` package's defaults; building our own engine means owning the
problem.  These heuristics compute an ordering (a permutation of pattern
columns) from the training patterns themselves before the zone is built:

* :func:`balance_order` — most-balanced bits first: variables that are
  almost always 0 or 1 collapse into few nodes near the bottom.
* :func:`correlation_order` — greedy chaining of strongly correlated bits so
  related neurons sit at adjacent levels, where sharing is possible.
* :func:`random_order` — the control for ablation.
* :func:`correlated_pairs` — greedy maximum-|correlation| matching of the
  columns into pairs, feeding ``reorder(method="group")``: interleaved
  neuron orders (e.g. two concatenated layers) put each column's partner
  far away, where single-variable sifting struggles to reunite them —
  group sifting moves the matched pair as one block.

:func:`evaluate_ordering` measures the node count a given order yields, so
the ordering ablation bench can quantify the effect.

The static heuristics double as *seeds* for the manager's dynamic
reordering: :func:`seed_order` installs one on an empty manager
(``BDDManager.set_order``), and ``reorder(method="sift")`` then refines
it on the live table — sifting from a good static start converges in
fewer swaps than sifting from the identity order.
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

import numpy as np

from repro.bdd.analysis import node_count
from repro.bdd.manager import BDDManager


def activation_frequencies(patterns: np.ndarray) -> np.ndarray:
    """Per-column frequency of 1s in a ``(N, d)`` pattern array."""
    patterns = np.atleast_2d(patterns)
    if patterns.size == 0:
        raise ValueError("patterns must be non-empty")
    return patterns.mean(axis=0)


def balance_order(patterns: np.ndarray, balanced_first: bool = True) -> np.ndarray:
    """Order columns by how balanced (close to 50% on) they are."""
    freqs = activation_frequencies(patterns)
    imbalance = np.abs(freqs - 0.5)
    order = np.argsort(imbalance, kind="stable")
    return order if balanced_first else order[::-1].copy()


def correlation_order(patterns: np.ndarray) -> np.ndarray:
    """Greedy chain: start at the most balanced column, repeatedly append
    the remaining column with the strongest absolute correlation to the
    last chosen one."""
    patterns = np.atleast_2d(patterns).astype(np.float64)
    n, d = patterns.shape
    if d == 1:
        return np.array([0])
    centered = patterns - patterns.mean(axis=0)
    std = centered.std(axis=0)
    std[std == 0] = 1.0
    normalised = centered / std
    corr = np.abs(normalised.T @ normalised) / max(n, 1)

    start = int(np.argmin(np.abs(patterns.mean(axis=0) - 0.5)))
    chosen = [start]
    remaining = set(range(d)) - {start}
    while remaining:
        last = chosen[-1]
        best = max(remaining, key=lambda j: corr[last, j])
        chosen.append(best)
        remaining.remove(best)
    return np.array(chosen)


def random_order(width: int, seed: int = 0) -> np.ndarray:
    """A random permutation — the ablation control."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return np.random.default_rng(seed).permutation(width)


def correlated_pairs(patterns: np.ndarray) -> list:
    """Greedily match columns into maximum-|correlation| pairs.

    Repeatedly takes the strongest-correlated unmatched column pair until
    at most one column is left over.  The result (a list of ``(a, b)``
    index tuples, strongest pair first) is the ``groups`` argument for
    ``BDDManager.reorder(method="group")`` — each pair is sifted as a
    rigid block, so partners that a bad seed order scattered far apart
    travel together instead of one waiting at the far side of the
    table-growing region between them.
    """
    patterns = np.atleast_2d(patterns).astype(np.float64)
    n, d = patterns.shape
    if d < 2:
        return []
    centered = patterns - patterns.mean(axis=0)
    std = centered.std(axis=0)
    std[std == 0] = 1.0
    corr = np.abs((centered / std).T @ (centered / std)) / max(n, 1)
    np.fill_diagonal(corr, -1.0)
    pairs = []
    unmatched = corr.copy()
    for _ in range(d // 2):
        flat = int(np.argmax(unmatched))
        a, b = divmod(flat, d)
        if unmatched[a, b] < 0:
            break  # everything left is already matched
        pairs.append((min(a, b), max(a, b)))
        unmatched[[a, b], :] = -1.0
        unmatched[:, [a, b]] = -1.0
    return pairs


#: Registry of the static ordering heuristics, keyed as accepted by
#: :func:`static_order` / :func:`seed_order`.
STATIC_ORDERS = ("balance", "correlation", "random", "identity")


def static_order(patterns: np.ndarray, method: str = "balance",
                 seed: int = 0) -> np.ndarray:
    """Compute a static variable order from training patterns by name."""
    patterns = np.atleast_2d(patterns)
    if method == "balance":
        return balance_order(patterns)
    if method == "correlation":
        return correlation_order(patterns)
    if method == "random":
        return random_order(patterns.shape[1], seed=seed)
    if method == "identity":
        return np.arange(patterns.shape[1])
    raise ValueError(
        f"unknown static order {method!r}; available: {', '.join(STATIC_ORDERS)}"
    )


def seed_order(
    manager: BDDManager,
    patterns: np.ndarray,
    method: Union[str, Sequence[int]] = "balance",
) -> np.ndarray:
    """Install a static order on an *empty* manager as the sifting seed.

    ``method`` is a heuristic name from :data:`STATIC_ORDERS` or an
    explicit permutation.  Returns the installed order (level -> column).
    """
    if isinstance(method, str):
        order = static_order(patterns, method)
    else:
        order = np.asarray(method)
    manager.set_order(order)
    return order


def evaluate_ordering(
    patterns: np.ndarray,
    order: Sequence[int],
    sift: bool = False,
    groups: Union[str, Sequence[Sequence[int]], None] = None,
    kernel: Union[str, None] = None,
) -> Dict[str, int]:
    """Build the pattern-set BDD under ``order`` and report its size.

    ``order[k]`` gives the pattern column placed at BDD level ``k``.
    ``sift=True`` additionally runs a sifting pass on the built diagram
    and reports the refined size (``sifted_nodes``/``sift_swaps``) — the
    static-seed-then-sift pipeline the zone backend uses.  ``groups``
    upgrades that pass to group sifting: pass explicit variable pairs,
    or ``"correlated"`` to derive them from the patterns with
    :func:`correlated_pairs`.  ``kernel`` selects the manager's swap
    kernel (``"vector"``/``"python"``; default per the manager).
    """
    patterns = np.atleast_2d(patterns)
    order = np.asarray(order)
    if sorted(order.tolist()) != list(range(patterns.shape[1])):
        raise ValueError("order must be a permutation of the pattern columns")
    mgr = BDDManager(patterns.shape[1])
    mgr.set_order(order)
    zone = mgr.function(mgr.from_patterns(patterns))
    result = {"nodes": node_count(mgr, zone.ref), "total_nodes": len(mgr)}
    if sift or groups is not None:
        if isinstance(groups, str):
            if groups != "correlated":
                raise ValueError(
                    f"unknown group heuristic {groups!r}; only 'correlated'"
                )
            groups = correlated_pairs(patterns)
        if groups:
            stats = mgr.reorder(method="group", groups=groups, kernel=kernel)
        else:
            stats = mgr.reorder(method="sift", kernel=kernel)
        result["sifted_nodes"] = node_count(mgr, zone.ref)
        result["sift_swaps"] = stats["swaps"]
    return result
