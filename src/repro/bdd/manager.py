"""Hash-consed ROBDD manager with complement edges, GC and reordering.

The manager owns every node.  A *node* is a physical entry in three
parallel lists (``_var``, ``_low``, ``_high``); a *ref* is what clients
hold: ``ref = node_index * 2 + 1`` for the regular sense of a node and
``ref = node_index * 2`` for its complement (negation is the O(1) bit
flip ``ref ^ 1``).  There is one terminal node (index 0, the constant
``true``); ``TRUE == 1`` is its regular ref and ``FALSE == 0`` its
complement, so the two constants keep their historical values.

Canonical form (Brace–Rudell–Bryant): the stored *high* edge of every
node is regular.  ``_mk`` hoists a complemented high edge onto the
result ref, which — together with the usual ``low == high`` collapse and
hash-consing — keeps functions canonical: two functions are equal iff
their refs are equal, and ``f`` / ``NOT f`` share every node.

Variables are addressed by *index* ``0 .. num_vars-1``; the *level* a
variable occupies in the diagram is a permutation maintained by the
manager (``set_order`` seeds it on an empty table, ``reorder`` sifts a
live one).  The public API works on refs or on :class:`BDDFunction`
wrappers, which add operator overloading and — unlike raw refs — are
tracked as GC roots and remapped in place when the node table compacts.

Garbage collection is mark-and-sweep over the pinned roots
(:meth:`incref`/:meth:`decref`), the live :class:`BDDFunction` handles
and any explicit extra roots: dead nodes are dropped, the node arrays
compact, and the unique table and operation caches are rewritten to the
new indices.  An automatic collection triggers inside ``_mk`` once the
table passes ``gc_threshold`` — it runs only at the *end* of a public
operation (with the operation's result as an extra root), so raw refs
held across operation boundaries must be pinned or wrapped.
"""

from __future__ import annotations

import os
import weakref
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {value!r}") from None


def _env_flag(name: str, default: bool) -> bool:
    value = os.environ.get(name, "").strip().lower()
    if not value:
        return default
    return value in ("1", "true", "yes", "on")


#: Public operations that end in a ``_checkpoint`` — the only places an
#: automatic GC or reordering pass can run.  Raw refs are stable *within*
#: one of these operations (the result is an extra root) but may be
#: renumbered across any call to one of them: a raw ref held in a local
#: across a safe point must be pinned (:meth:`BDDManager.incref`) or
#: re-read afterwards.  The ``bdd-ref-safety`` lint rule enforces exactly
#: this set; keep it in sync when adding checkpointed operations (the
#: lint fixture tests assert the rule's fallback copy matches).
GC_SAFE_POINTS = frozenset(
    {
        "ite",
        "apply_and",
        "apply_or",
        "apply_xor",
        "apply_implies",
        "apply_iff",
        "exists",
        "exists_many",
        "forall",
        "restrict",
        "from_pattern",
        "from_patterns",
        "hamming_expand",
        "hamming_ball",
        "reorder",
        "collect_garbage",
    }
)


class BDDManager:
    """Owns and deduplicates complement-edge ROBDD nodes.

    Parameters
    ----------
    num_vars:
        Number of boolean variables.  The paper's practical guidance is
        that a few hundred variables is the comfortable limit for
        monitors; the manager itself enforces no hard cap.
    var_names:
        Optional human-readable names, used by the DOT exporter.
    gc_threshold:
        Physical node count past which ``_mk`` requests an automatic
        mark-and-sweep collection (run at the end of the current public
        operation).  ``0`` / ``None`` disables auto-GC — the safe
        default for bare managers whose clients hold raw refs; the zone
        backend enables it because it pins every ref it keeps.
    auto_reorder:
        Run a sifting pass automatically whenever the live table doubles
        past ``auto_reorder_threshold`` (same safe-point rules as
        auto-GC).
    """

    FALSE = 0
    TRUE = 1

    def __init__(
        self,
        num_vars: int,
        var_names: Optional[Sequence[str]] = None,
        gc_threshold: Optional[int] = None,
        auto_reorder: bool = False,
    ):
        if num_vars < 0:
            raise ValueError(f"num_vars must be non-negative, got {num_vars}")
        if var_names is not None and len(var_names) != num_vars:
            raise ValueError(
                f"var_names has {len(var_names)} entries for {num_vars} variables"
            )
        self.num_vars = num_vars
        self.var_names = list(var_names) if var_names is not None else [
            f"x{i}" for i in range(num_vars)
        ]
        # Physical node 0 is the single terminal (constant true).  Its
        # var is the `num_vars` sentinel — one past every real variable —
        # and its children are self-loops that are never traversed.
        self._var: List[int] = [num_vars]
        self._low: List[int] = [1]
        self._high: List[int] = [1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # level <-> variable permutation (identity until reordered); the
        # trailing sentinel entry keeps terminal level arithmetic branchless.
        self._level_to_var: List[int] = list(range(num_vars)) + [num_vars]
        self._var_to_level: List[int] = list(range(num_vars)) + [num_vars]
        # Operation caches (semantically order-independent: entries map
        # function identities, which reordering preserves).
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._exists_cache: Dict[Tuple[int, int], int] = {}
        self._expand_cache: Dict[int, int] = {}
        self._ite_calls = 0
        self._ite_cache_hits = 0
        self._exists_calls = 0
        self._exists_cache_hits = 0
        self._expand_calls = 0
        self._expand_cache_hits = 0
        # GC state: external pins (ref -> count), tracked function
        # handles, compaction listeners, counters.
        self.gc_threshold = int(gc_threshold) if gc_threshold else 0
        self._gc_pending = False
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._pins: Dict[int, int] = {}
        self._functions: "weakref.WeakSet[BDDFunction]" = weakref.WeakSet()
        self._remap_listeners: List[object] = []
        # Reordering state.
        self.auto_reorder = bool(auto_reorder)
        self.auto_reorder_threshold = 2048
        self._in_reorder = False
        self._reorder_count = 0
        self._reorder_swaps = 0
        # Numpy mirrors of the node arrays for the vectorized batch walk;
        # invalidated (by version bump) on any structural change.
        self._np_version = 0
        self._np_cache: Optional[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = None
        # Root-set generation (pins/handles) + memoised live-node count so
        # cache_stats() stays O(1) on repeated calls (per-class statistics
        # sweeps share one manager and would otherwise re-mark the whole
        # table per class per gamma).
        self._roots_version = 0
        self._live_count_cache: Optional[Tuple[int, int, int]] = None

    # ------------------------------------------------------------------
    # node primitives
    # ------------------------------------------------------------------
    def node_index(self, ref: int) -> int:
        """Physical node index behind ``ref`` (0 for both terminals)."""
        return ref >> 1

    def is_complemented(self, ref: int) -> bool:
        """True when ``ref`` is the complemented sense of its node."""
        return not (ref & 1)

    def var_of(self, ref: int) -> int:
        """Variable index tested by ``ref`` (``num_vars`` for terminals)."""
        return self._var[ref >> 1]

    def level_of(self, ref: int) -> int:
        """Return the level of ``ref`` (``num_vars`` for terminals)."""
        return self._var_to_level[self._var[ref >> 1]]

    def low_of(self, ref: int) -> int:
        """Negative cofactor of ``ref`` (complement parity applied)."""
        return self._low[ref >> 1] ^ ((ref & 1) ^ 1)

    def high_of(self, ref: int) -> int:
        """Positive cofactor of ``ref`` (complement parity applied)."""
        return self._high[ref >> 1] ^ ((ref & 1) ^ 1)

    def is_terminal(self, ref: int) -> bool:
        """True for the two constant refs."""
        return ref <= 1

    def var_order(self) -> Tuple[int, ...]:
        """Current variable order: ``order[level] == variable index``."""
        return tuple(self._level_to_var[: self.num_vars])

    def set_order(self, order: Sequence[int]) -> None:
        """Seed the variable order of an *empty* manager.

        ``order[level]`` names the variable placed at BDD level
        ``level`` — the hook the static heuristics in
        :mod:`repro.bdd.ordering` use to seed sifting.  Raises once any
        internal node exists (use :meth:`reorder` on a live table).
        """
        order = [int(x) for x in order]
        if sorted(order) != list(range(self.num_vars)):
            raise ValueError("order must be a permutation of the variable indices")
        if len(self._var) > 1:
            raise ValueError(
                "set_order requires an empty manager; use reorder() on a live table"
            )
        self._level_to_var = order + [self.num_vars]
        inverse = [0] * self.num_vars
        for level, v in enumerate(order):
            inverse[v] = level
        self._var_to_level = inverse + [self.num_vars]

    def _mk(self, var: int, low: int, high: int) -> int:
        """Canonical node ``(var, low, high)`` (complement-edge normal form)."""
        if low == high:
            return low
        if not (high & 1):
            # Complemented high edge: store the complemented node (whose
            # high edge is regular) and hoist the complement to the ref.
            return self._mk_raw(var, low ^ 1, high ^ 1) ^ 1
        return self._mk_raw(var, low, high)

    def _mk_raw(self, var: int, low: int, high: int) -> int:
        key = (var, low, high)
        index = self._unique.get(key)
        if index is None:
            index = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = index
            self._np_version += 1
            if (
                self.gc_threshold
                and not self._in_reorder
                and index + 1 >= self.gc_threshold
            ):
                self._gc_pending = True
        return (index << 1) | 1

    def var(self, index: int) -> int:
        """Return the BDD of the single variable ``index``."""
        self._check_var(index)
        return self._mk(index, self.FALSE, self.TRUE)

    def nvar(self, index: int) -> int:
        """Return the BDD of the negated variable ``index``."""
        return self.var(index) ^ 1

    def _check_var(self, index: int) -> None:
        if not 0 <= index < self.num_vars:
            raise IndexError(
                f"variable index {index} out of range for {self.num_vars} variables"
            )

    def __len__(self) -> int:
        """Physical node count (terminal included; may contain garbage
        between collections — ``cache_stats()['live_nodes']`` is exact)."""
        return len(self._var)

    # ------------------------------------------------------------------
    # GC safe points
    # ------------------------------------------------------------------
    def _checkpoint(self, ref: int) -> int:
        """End-of-operation safe point: run a pending auto-GC (and an
        auto-reorder when armed) with ``ref`` as an extra root, and
        return the possibly-remapped ref."""
        if self._gc_pending and not self._in_reorder:
            self._gc_pending = False
            if self.gc_threshold and len(self._var) >= self.gc_threshold:
                remap = self.collect_garbage(extra_roots=(ref,))
                ref = remap(ref)
                # Back off when most of the table is genuinely live, so a
                # steadily growing workload is not re-collected every _mk.
                if len(self._var) * 4 >= self.gc_threshold * 3:
                    self.gc_threshold = max(self.gc_threshold, 2 * len(self._var))
        if (
            self.auto_reorder
            and not self._in_reorder
            and self.num_vars > 1
            and len(self._var) >= self.auto_reorder_threshold
        ):
            _, remap = self._sift(extra_roots=(ref,))
            ref = remap(ref)
            self.auto_reorder_threshold = max(2 * len(self._var), 2048)
        return ref

    # ------------------------------------------------------------------
    # core operator: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """Return the BDD of ``(f AND g) OR (NOT f AND h)``.

        All binary boolean operations reduce to ``ite``; results are
        memoised, so repeated queries are amortised constant time.
        """
        return self._checkpoint(self._ite(f, g, h))

    def _ite(self, f: int, g: int, h: int) -> int:
        # Terminal shortcuts.
        if f == 1:
            return g
        if f == 0:
            return h
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        if g == 0 and h == 1:
            return f ^ 1
        # Arguments sharing the guard collapse to constants.
        if g == f:
            g = 1
        elif g == (f ^ 1):
            g = 0
        if h == f:
            h = 0
        elif h == (f ^ 1):
            h = 1
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        if g == 0 and h == 1:
            return f ^ 1
        # Commutative re-rooting (OR / AND) for cache friendliness.
        if g == 1 and f > h:
            f, h = h, f
        elif h == 0 and f > g:
            f, g = g, f
        # Complement normal form: regular guard, regular then-branch.
        if not (f & 1):
            f ^= 1
            g, h = h, g
        if not (g & 1):
            return self._ite(f, g ^ 1, h ^ 1) ^ 1
        self._ite_calls += 1
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            self._ite_cache_hits += 1
            return cached
        vtl = self._var_to_level
        var_arr = self._var
        level = min(
            vtl[var_arr[f >> 1]], vtl[var_arr[g >> 1]], vtl[var_arr[h >> 1]]
        )
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        low = self._ite(f0, g0, h0)
        high = self._ite(f1, g1, h1)
        result = self._mk(self._level_to_var[level], low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, ref: int, level: int) -> Tuple[int, int]:
        """Negative/positive cofactors of ``ref`` with respect to ``level``."""
        index = ref >> 1
        if self._var_to_level[self._var[index]] == level:
            flip = (ref & 1) ^ 1
            return self._low[index] ^ flip, self._high[index] ^ flip
        return ref, ref

    # ------------------------------------------------------------------
    # derived boolean connectives
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        """Logical negation — an O(1) edge-bit flip under complement edges."""
        return f ^ 1

    def apply_and(self, f: int, g: int) -> int:
        """Logical conjunction."""
        return self._checkpoint(self._ite(f, g, 0))

    def apply_or(self, f: int, g: int) -> int:
        """Logical disjunction (the paper's ``bdd.or``)."""
        return self._checkpoint(self._ite(f, 1, g))

    def apply_xor(self, f: int, g: int) -> int:
        """Logical exclusive or (one ``ite`` — negation is free)."""
        return self._checkpoint(self._ite(f, g ^ 1, g))

    def apply_implies(self, f: int, g: int) -> int:
        """Logical implication ``f -> g``."""
        return self._checkpoint(self._ite(f, g, 1))

    def apply_iff(self, f: int, g: int) -> int:
        """Logical equivalence."""
        return self._checkpoint(self._ite(f, g, g ^ 1))

    # ------------------------------------------------------------------
    # quantification and restriction
    # ------------------------------------------------------------------
    def exists(self, f: int, index: int) -> int:
        """Existentially quantify variable ``index`` (the paper's ``bdd.exists``).

        The result treats variable ``index`` as a don't-care:
        ``exists(x, f) = f[x:=0] OR f[x:=1]``.  Applied to a set of
        bit-vectors this adds every vector reachable by flipping bit
        ``index`` — the building block of the Hamming-distance enlargement
        in Algorithm 1, line 12.
        """
        self._check_var(index)
        return self._checkpoint(self._exists_rec(f, index))

    def _exists_rec(self, f: int, index: int) -> int:
        target = self._var_to_level[index]
        node = f >> 1
        if self._var_to_level[self._var[node]] > target:
            # f does not depend on variables at or above `index`'s level.
            return f
        self._exists_calls += 1
        key = (f, index)
        cached = self._exists_cache.get(key)
        if cached is not None:
            self._exists_cache_hits += 1
            return cached
        flip = (f & 1) ^ 1
        low = self._low[node] ^ flip
        high = self._high[node] ^ flip
        if self._var[node] == index:
            result = self._ite(low, 1, high)
        else:
            result = self._mk(
                self._var[node],
                self._exists_rec(low, index),
                self._exists_rec(high, index),
            )
        self._exists_cache[key] = result
        return result

    def exists_many(self, f: int, indices: Iterable[int]) -> int:
        """Existentially quantify a set of variables, innermost first."""
        result = f
        unique = set(indices)
        for index in unique:
            self._check_var(index)
        vtl = self._var_to_level
        for index in sorted(unique, key=lambda i: -vtl[i]):
            result = self._exists_rec(result, index)
        return self._checkpoint(result)

    def forall(self, f: int, index: int) -> int:
        """Universally quantify variable ``index``."""
        self._check_var(index)
        return self._checkpoint(self._exists_rec(f ^ 1, index) ^ 1)

    def restrict(self, f: int, index: int, value: bool) -> int:
        """Return the cofactor ``f[index := value]``."""
        self._check_var(index)
        return self._checkpoint(self._restrict_rec(f, index, bool(value)))

    def _restrict_rec(self, f: int, index: int, value: bool) -> int:
        target = self._var_to_level[index]
        node = f >> 1
        if self._var_to_level[self._var[node]] > target:
            return f
        flip = (f & 1) ^ 1
        low = self._low[node] ^ flip
        high = self._high[node] ^ flip
        if self._var[node] == index:
            return high if value else low
        return self._mk(
            self._var[node],
            self._restrict_rec(low, index, value),
            self._restrict_rec(high, index, value),
        )

    # ------------------------------------------------------------------
    # set-of-patterns interface (what the monitor uses)
    # ------------------------------------------------------------------
    def empty_set(self) -> int:
        """The empty pattern set (the paper's ``bdd.emptySet``)."""
        return self.FALSE

    def universal_set(self) -> int:
        """The set of all 2^n patterns."""
        return self.TRUE

    def from_pattern(self, pattern: Sequence[int]) -> int:
        """Encode one bit-vector as a cube (the paper's ``bdd.encode``).

        ``pattern`` must have exactly ``num_vars`` entries, each 0 or 1.
        Built bottom-up along the current variable order, so it allocates
        at most ``num_vars`` nodes and costs no ``ite`` calls.
        """
        if len(pattern) != self.num_vars:
            raise ValueError(
                f"pattern has {len(pattern)} bits, expected {self.num_vars}"
            )
        result = self.TRUE
        for level in range(self.num_vars - 1, -1, -1):
            index = self._level_to_var[level]
            bit = pattern[index]
            if bit not in (0, 1, True, False):
                raise ValueError(f"pattern bit {index} is {bit!r}, expected 0 or 1")
            if bit:
                result = self._mk(index, self.FALSE, result)
            else:
                result = self._mk(index, result, self.FALSE)
        return self._checkpoint(result)

    def from_patterns(self, patterns: Iterable[Sequence[int]]) -> int:
        """Encode a collection of bit-vectors as the union of their cubes.

        Bulk construction: the patterns are deduplicated and sorted
        lexicographically *in level order*, then the BDD is built
        top-down by splitting the sorted block on each level in turn.
        Every ``_mk`` call lands on a node of the final diagram, so the
        cost is proportional to the result size — no ``ite`` calls and
        no intermediate diagrams, unlike the naive ``OR`` of N cubes
        which rebuilds the accumulated union N times.
        """
        items = patterns if isinstance(patterns, np.ndarray) else list(patterns)
        if len(items) == 0:
            return self.FALSE
        rows = np.atleast_2d(np.asarray(items, dtype=np.uint8))
        if rows.shape[1] != self.num_vars:
            raise ValueError(
                f"patterns have {rows.shape[1]} bits, expected {self.num_vars}"
            )
        if self.num_vars == 0:
            return self.TRUE
        if rows.max(initial=0) > 1:
            raise ValueError("pattern bits must be 0 or 1")

        from bisect import bisect_left

        num_vars = self.num_vars
        order = self._level_to_var[:num_vars]
        # Column k of the permuted matrix is the variable at level k, so
        # the lexicographic sort groups rows by their level-order prefix.
        rows = np.unique(rows[:, order], axis=0)
        # Per-level columns as plain lists: inside any block that agrees on
        # the bits above `level`, the column is 0s-then-1s, so the split is
        # a C-speed binary search bounded to the block.
        columns = rows.T.tolist()

        # Iterative post-order over the block tree (an explicit stack keeps
        # arbitrary variable counts clear of Python's recursion limit).
        # Each block of rows agrees on all bits above `level`; its split on
        # bit `level` yields the two child blocks.  Depth-first order means
        # a parent's child refs are exactly the top of `results` when its
        # expanded entry is popped: low last (pushed low-then-high, so the
        # high subtree finishes first).
        results: List[int] = []
        stack: List[Tuple[int, int, int, bool, int]] = [(0, 0, len(rows), False, 0)]
        while stack:
            level, lo, hi, expanded, split = stack.pop()
            if level == num_vars:
                results.append(self.TRUE)
                continue
            if not expanded:
                split = bisect_left(columns[level], 1, lo, hi)
                stack.append((level, lo, hi, True, split))
                if split > lo:   # some rows have bit `level` == 0
                    stack.append((level + 1, lo, split, False, 0))
                if split < hi:   # some rows have bit `level` == 1
                    stack.append((level + 1, split, hi, False, 0))
            else:
                low = results.pop() if split > lo else self.FALSE
                high = results.pop() if split < hi else self.FALSE
                results.append(self._mk(order[level], low, high))
        return self._checkpoint(results[0])

    def contains(self, f: int, pattern: Sequence[int]) -> bool:
        """Membership query: is ``pattern`` in the set ``f``?

        Runs in time linear in the number of variables — the runtime
        guarantee the paper relies on for deployment.
        """
        if len(pattern) != self.num_vars:
            raise ValueError(
                f"pattern has {len(pattern)} bits, expected {self.num_vars}"
            )
        var_arr, low, high = self._var, self._low, self._high
        ref = f
        while ref > 1:
            index = ref >> 1
            flip = (ref & 1) ^ 1
            child = high[index] if pattern[var_arr[index]] else low[index]
            ref = child ^ flip
        return ref == self.TRUE

    def _numpy_nodes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        cache = self._np_cache
        if cache is None or cache[0] != self._np_version:
            cache = (
                self._np_version,
                np.asarray(self._var, dtype=np.int64),
                np.asarray(self._low, dtype=np.int64),
                np.asarray(self._high, dtype=np.int64),
            )
            self._np_cache = cache
        return cache[1], cache[2], cache[3]

    def contains_batch(self, f: int, patterns: "np.ndarray") -> "np.ndarray":
        """Membership queries for a whole ``(N, num_vars)`` pattern matrix.

        The walk is vectorized across rows: one gather per level advances
        every still-active query by one node hop (complement parity is a
        single XOR on the ref vector), so the per-row cost is numpy work
        instead of a Python loop — the difference between the batched BDD
        path and the bitset kernel being in the same league.
        """
        patterns = np.atleast_2d(np.asarray(patterns))
        if patterns.shape[1] != self.num_vars:
            raise ValueError(
                f"patterns have {patterns.shape[1]} bits, expected {self.num_vars}"
            )
        n = len(patterns)
        if n == 0:
            return np.zeros(0, dtype=bool)
        if f <= 1:
            return np.full(n, f == self.TRUE, dtype=bool)
        var_arr, low_arr, high_arr = self._numpy_nodes()
        bits = patterns.astype(bool, copy=False)
        refs = np.full(n, f, dtype=np.int64)
        active = np.arange(n)
        for _ in range(self.num_vars + 1):
            still = refs[active] > 1
            active = active[still]
            if not len(active):
                break
            cur = refs[active]
            nodes = cur >> 1
            flip = (cur & 1) ^ 1
            bit = bits[active, var_arr[nodes]]
            child = np.where(bit, high_arr[nodes], low_arr[nodes])
            refs[active] = child ^ flip
        return refs == self.TRUE

    def hamming_expand(self, f: int, monitored: Optional[Sequence[int]] = None) -> int:
        """One Hamming-distance enlargement step (Algorithm 1, lines 9-14).

        Returns ``f`` plus every pattern at Hamming distance exactly 1
        from it (with respect to the monitored variables) — semantically
        the union of ``exists(j, f)`` over every monitored ``j``.

        The full-variable case (``monitored=None``) runs a single
        recursive pass instead of the paper's ``num_vars`` separate
        ``exists``/``or`` sweeps: with ``f = ite(x, f1, f0)``, a pattern
        is within distance 1 of ``f`` iff its tail is within distance 1
        of the matching cofactor (no flip at ``x``) or *exactly in* the
        opposite cofactor (the one flip spent at ``x``), i.e.
        ``E(f) = ite(x, E(f1) OR f0, E(f0) OR f1)``, memoised per node.
        That visits each node of ``f`` once — orders of magnitude less
        work than materialising ``num_vars`` intermediate diagrams.
        """
        if monitored is None:
            return self._checkpoint(self._expand_rec(f))
        result = self.FALSE
        for index in monitored:
            self._check_var(index)
            result = self._ite(result, 1, self._exists_rec(f, index))
        # Guard against an empty `monitored` list: the zone never shrinks.
        return self._checkpoint(self._ite(result, 1, f))

    def _expand_rec(self, f: int) -> int:
        """Distance-1 ball of ``f`` over all variables (memoised).

        Skipped (don't-care) variables need no special case: flipping a
        don't-care bit maps every pattern of ``f`` to another pattern of
        ``f``, contributing nothing new.  The cache is keyed by ``f``
        alone — the result is a function of ``f``'s semantics, so
        entries stay valid across reorders and are remapped by GC like
        the other operation caches.
        """
        if f <= 1:
            return f
        self._expand_calls += 1
        cached = self._expand_cache.get(f)
        if cached is not None:
            self._expand_cache_hits += 1
            return cached
        node = f >> 1
        flip = (f & 1) ^ 1
        low = self._low[node] ^ flip
        high = self._high[node] ^ flip
        result = self._mk(
            self._var[node],
            self._ite(self._expand_rec(low), 1, high),
            self._ite(self._expand_rec(high), 1, low),
        )
        self._expand_cache[f] = result
        return result

    def hamming_ball(
        self,
        f: int,
        radius: int,
        monitored: Optional[Sequence[int]] = None,
    ) -> int:
        """Enlarge ``f`` to all patterns within Hamming distance ``radius``."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        # The accumulator is held across hamming_expand safe points, so an
        # auto-GC/reorder inside an expansion could renumber the table out
        # from under a raw local; a tracked handle is remapped in place,
        # keeping the saturation comparison within one numbering.
        holder = BDDFunction(self, f)
        for _ in range(radius):
            expanded = self.hamming_expand(holder.ref, monitored)
            if expanded == holder.ref:
                break  # saturated: further expansion is a no-op
            holder.ref = expanded
        return holder.ref

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def incref(self, ref: int) -> int:
        """Pin ``ref`` as an external GC root (counted; see :meth:`decref`).

        Pinned refs survive :meth:`collect_garbage` and are remapped in
        the manager's own pin table when the node arrays compact;
        holders learn their new values through a remap listener
        (:meth:`register_remap_listener`).  Returns ``ref`` unchanged.
        """
        self._pins[ref] = self._pins.get(ref, 0) + 1
        self._roots_version += 1
        return ref

    def decref(self, ref: int) -> None:
        """Drop one pin count of ``ref`` (erasing the root at zero)."""
        count = self._pins.get(ref)
        if count is None:
            raise ValueError(f"ref {ref} is not pinned")
        if count == 1:
            del self._pins[ref]
        else:
            self._pins[ref] = count - 1
        self._roots_version += 1

    def register_remap_listener(self, callback: Callable[[Callable[[int], int]], None]) -> None:
        """Register ``callback(remap)`` to fire after every compaction.

        ``remap`` maps old live refs to their post-compaction values
        (parity preserved); dead refs raise ``KeyError``.  Bound methods
        are held weakly so a listener never keeps its owner alive.
        """
        if hasattr(callback, "__self__"):
            self._remap_listeners.append(weakref.WeakMethod(callback))
        else:
            self._remap_listeners.append(lambda cb=callback: cb)

    def collect_garbage(self, extra_roots: Sequence[int] = ()) -> Callable[[int], int]:
        """Mark-and-sweep the node table and compact the arrays.

        Roots are the pinned refs, every live :class:`BDDFunction`
        handle and ``extra_roots``.  Dead nodes are reclaimed, the node
        arrays compact in place, and the unique table, operation caches,
        pin table and function handles are rewritten to the new indices.
        Returns the remap callable (old live ref -> new ref).
        """
        roots: List[int] = list(self._pins)
        roots.extend(fn.ref for fn in tuple(self._functions))
        roots.extend(extra_roots)
        low_arr, high_arr = self._low, self._high
        live = {0}
        stack = [ref >> 1 for ref in roots]
        while stack:
            index = stack.pop()
            if index in live:
                continue
            live.add(index)
            stack.append(low_arr[index] >> 1)
            stack.append(high_arr[index] >> 1)
        old_count = len(self._var)
        index_map: Dict[int, int] = {}
        new_var: List[int] = []
        new_low: List[int] = []
        new_high: List[int] = []
        for old in range(old_count):
            if old in live:
                index_map[old] = len(new_var)
                new_var.append(self._var[old])
                new_low.append(self._low[old])
                new_high.append(self._high[old])

        def remap(ref: int) -> int:
            return (index_map[ref >> 1] << 1) | (ref & 1)

        for i in range(1, len(new_low)):
            new_low[i] = remap(new_low[i])
            new_high[i] = remap(new_high[i])
        self._var, self._low, self._high = new_var, new_low, new_high
        self._unique = {
            (new_var[i], new_low[i], new_high[i]): i for i in range(1, len(new_var))
        }
        # Rewrite the operation caches instead of stranding entries that
        # reference reclaimed nodes: live entries survive (remapped), the
        # rest are dropped.
        self._ite_cache = {
            (remap(f), remap(g), remap(h)): remap(r)
            for (f, g, h), r in self._ite_cache.items()
            if f >> 1 in live and g >> 1 in live and h >> 1 in live and r >> 1 in live
        }
        self._exists_cache = {
            (remap(f), index): remap(r)
            for (f, index), r in self._exists_cache.items()
            if f >> 1 in live and r >> 1 in live
        }
        self._expand_cache = {
            remap(f): remap(r)
            for f, r in self._expand_cache.items()
            if f >> 1 in live and r >> 1 in live
        }
        new_pins: Dict[int, int] = {}
        for ref, count in self._pins.items():
            new_pins[remap(ref)] = new_pins.get(remap(ref), 0) + count
        self._pins = new_pins
        for fn in tuple(self._functions):
            fn.ref = remap(fn.ref)
        self._np_version += 1
        self._gc_runs += 1
        self._gc_reclaimed += old_count - len(new_var)
        kept = []
        for entry in self._remap_listeners:
            callback = entry()
            if callback is not None:
                callback(remap)
                kept.append(entry)
        self._remap_listeners = kept
        return remap

    # ------------------------------------------------------------------
    # dynamic variable reordering (Rudell sifting)
    # ------------------------------------------------------------------
    def reorder(self, method: str = "sift", max_growth: float = 1.2,
                max_vars: Optional[int] = None, kernel: Optional[str] = None,
                groups: Optional[Sequence[Sequence[int]]] = None,
                ) -> Dict[str, int]:
        """Reorder the live table to shrink it; refs are remapped in place.

        ``method="sift"`` is Rudell's algorithm: each variable (largest
        level population first, optionally capped at ``max_vars``) is
        moved through every level by adjacent swaps and parked where the
        table was smallest; ``max_growth`` bounds the transient blow-up
        tolerated while exploring.  ``method="group"`` sifts the variable
        *pairs* named by ``groups`` as rigid two-level blocks (glued
        first, then moved two swaps per step), then sifts the remaining
        singles — pairs with correlated cofactor structure (e.g. from
        :func:`repro.bdd.ordering.correlated_pairs`) shrink further than
        sifting either member alone, because single-variable moves must
        transit the table-growing region between the pair.

        ``kernel`` picks the swap engine: ``"vector"`` (default, or env
        ``REPRO_BDD_SIFT_KERNEL``) runs each level swap as batched numpy
        column operations over array mirrors of the node table;
        ``"python"`` is the per-node reference loop.  Both kernels visit
        the same swap sequence and produce the same final variable order
        and node count — the vector kernel is the same algorithm with
        the per-node loop folded into vectorized canonicalization.

        Raw refs held by callers must be pinned or wrapped in
        :class:`BDDFunction` handles — both are remapped by the two
        compactions bracketing the sift.
        Returns ``{"nodes_before", "nodes_after", "swaps", "vars_sifted"}``.
        """
        if method not in ("sift", "group"):
            raise ValueError(
                f"unknown reorder method {method!r}; 'sift' or 'group'"
            )
        if method == "group" and not groups:
            raise ValueError("method='group' requires non-empty groups")
        stats, _ = self._sift(
            max_growth=max_growth, max_vars=max_vars, kernel=kernel,
            groups=groups if method == "group" else None,
        )
        return stats

    def _sift(
        self,
        max_growth: float = 1.2,
        max_vars: Optional[int] = None,
        extra_roots: Sequence[int] = (),
        kernel: Optional[str] = None,
        groups: Optional[Sequence[Sequence[int]]] = None,
    ) -> Tuple[Dict[str, int], Callable[[int], int]]:
        if kernel is None:
            kernel = os.environ.get("REPRO_BDD_SIFT_KERNEL", "").strip() \
                or "vector"
        if kernel not in ("vector", "python"):
            raise ValueError(
                f"unknown sift kernel {kernel!r}; 'vector' or 'python'"
            )
        grouped: Dict[int, Tuple[int, ...]] = {}
        if groups:
            for pair in groups:
                members = tuple(int(x) for x in pair)
                if len(members) != 2:
                    raise ValueError(
                        f"groups must be variable pairs, got {members!r}"
                    )
                a, b = members
                for x in members:
                    if not 0 <= x < self.num_vars:
                        raise ValueError(f"group variable {x} out of range")
                if a == b or a in grouped or b in grouped:
                    raise ValueError(
                        "groups must pair distinct, non-overlapping variables"
                    )
                grouped[a] = grouped[b] = members
        if self.num_vars < 2 or len(self._var) <= 1:
            before = len(self._var)
            self._reorder_count += 1
            return (
                {"nodes_before": before, "nodes_after": before, "swaps": 0,
                 "vars_sifted": 0},
                lambda ref: ref,
            )
        self._in_reorder = True
        try:
            # Compact first so every physical node is live and the swap
            # bookkeeping (reference counts, level populations) is exact.
            remap1 = self.collect_garbage(extra_roots=extra_roots)
            mapped_roots = [remap1(ref) for ref in extra_roots]
            nodes_before = len(self._var)
            if kernel == "vector":
                state = _VecReorderState(self, mapped_roots)
                swap, live = state.swap, state.live_count
                counts = state.counts()
            else:
                state = None
                self._build_reorder_state(mapped_roots)
                swap, live = self._swap_levels, lambda: self._live
                counts = [len(nodes) for nodes in self._var_nodes]
            # Sift entities largest population first (a pair's population
            # is the two members' combined level population); ties break
            # on variable index, matching the stable single-variable sort.
            entities: List[Tuple[int, Tuple[int, ...]]] = []
            for v in range(self.num_vars):
                entity = grouped.get(v, (v,))
                if v != entity[0]:
                    continue  # second member; entity already listed
                population = sum(counts[x] for x in entity)
                if population:
                    entities.append((population, entity))
            entities.sort(key=lambda item: (-item[0], item[1]))
            if max_vars is not None:
                entities = entities[:max_vars]
            swaps = 0
            for _population, entity in entities:
                if len(entity) == 1:
                    swaps += self._sift_single(entity[0], max_growth, swap, live)
                else:
                    swaps += self._sift_pair(*entity, max_growth, swap, live)
            if state is not None:
                state.finalize()
            remap2 = self.collect_garbage(extra_roots=mapped_roots)
            nodes_after = len(self._var)
            self._reorder_count += 1
            self._reorder_swaps += swaps
            stats = {
                "nodes_before": nodes_before,
                "nodes_after": nodes_after,
                "swaps": swaps,
                "vars_sifted": sum(len(entity) for _, entity in entities),
            }
            return stats, (lambda ref: remap2(remap1(ref)))
        finally:
            self._in_reorder = False
            for attr in ("_rc", "_var_nodes"):
                if hasattr(self, attr):
                    delattr(self, attr)

    def _build_reorder_state(self, roots: Sequence[int]) -> None:
        n = len(self._var)
        rc = [0] * n
        for i in range(1, n):
            rc[self._low[i] >> 1] += 1
            rc[self._high[i] >> 1] += 1
        for ref, count in self._pins.items():
            rc[ref >> 1] += count
        for fn in tuple(self._functions):
            rc[fn.ref >> 1] += 1
        for ref in roots:
            rc[ref >> 1] += 1
        rc[0] += 1  # the terminal is immortal
        var_nodes: List[set] = [set() for _ in range(self.num_vars)]
        for i in range(1, n):
            var_nodes[self._var[i]].add(i)
        self._rc = rc
        self._var_nodes = var_nodes
        self._live = n

    def _rc_inc(self, ref: int) -> None:
        self._rc[ref >> 1] += 1

    def _rc_dec(self, ref: int) -> None:
        stack = [ref]
        rc = self._rc
        while stack:
            index = stack.pop() >> 1
            rc[index] -= 1
            if index and not rc[index]:
                # Dead: unlink from the unique table and level population;
                # the array slot becomes junk until the closing compaction.
                del self._unique[
                    (self._var[index], self._low[index], self._high[index])
                ]
                self._var_nodes[self._var[index]].discard(index)
                self._live -= 1
                stack.append(self._low[index])
                stack.append(self._high[index])

    def _mk_rc(self, var: int, low: int, high: int) -> int:
        """``_mk`` twin used during sifting: keeps reference counts and
        per-variable populations consistent for nodes it creates."""
        if low == high:
            return low
        if not (high & 1):
            return self._mk_rc_raw(var, low ^ 1, high ^ 1) ^ 1
        return self._mk_rc_raw(var, low, high)

    def _mk_rc_raw(self, var: int, low: int, high: int) -> int:
        key = (var, low, high)
        index = self._unique.get(key)
        if index is None:
            index = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = index
            self._rc.append(0)
            self._rc_inc(low)
            self._rc_inc(high)
            self._var_nodes[var].add(index)
            self._live += 1
            self._np_version += 1
        return (index << 1) | 1

    def _swap_levels(self, level: int) -> None:
        """Swap the variables at ``level`` and ``level + 1`` in place.

        Nodes at the upper level that depend on the lower variable are
        re-expressed in place (same physical index, so every parent edge
        and external root stays valid); their new children are found or
        created one level down.  The stored high edge stays regular
        automatically: the old high edge and *its* high edge were both
        regular, so the new high cofactor is regular by construction.
        """
        ltv, vtl = self._level_to_var, self._var_to_level
        va, vb = ltv[level], ltv[level + 1]
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        interacting = [
            i
            for i in self._var_nodes[va]
            if (low_arr[i] > 1 and var_arr[low_arr[i] >> 1] == vb)
            or (high_arr[i] > 1 and var_arr[high_arr[i] >> 1] == vb)
        ]
        for i in interacting:
            f0, f1 = low_arr[i], high_arr[i]
            j1 = f1 >> 1
            if f1 > 1 and var_arr[j1] == vb:
                f10, f11 = low_arr[j1], high_arr[j1]
            else:
                f10 = f11 = f1
            j0 = f0 >> 1
            if f0 > 1 and var_arr[j0] == vb:
                flip = (f0 & 1) ^ 1
                f00, f01 = low_arr[j0] ^ flip, high_arr[j0] ^ flip
            else:
                f00 = f01 = f0
            new_low = self._mk_rc(va, f00, f10)
            new_high = self._mk_rc(va, f01, f11)
            self._rc_inc(new_low)
            self._rc_inc(new_high)
            del self._unique[(va, f0, f1)]
            self._var_nodes[va].discard(i)
            var_arr[i] = vb
            low_arr[i] = new_low
            high_arr[i] = new_high
            self._unique[(vb, new_low, new_high)] = i
            self._var_nodes[vb].add(i)
            self._rc_dec(f0)
            self._rc_dec(f1)
        ltv[level], ltv[level + 1] = vb, va
        vtl[va], vtl[vb] = level + 1, level
        self._np_version += 1

    def _sift_single(
        self,
        v: int,
        max_growth: float,
        swap: Callable[[int], None],
        live: Callable[[], int],
    ) -> int:
        """Move one variable through every level by adjacent swaps and
        park it where the live table was smallest (Rudell).  ``swap`` /
        ``live`` come from whichever kernel is driving the pass."""
        n = self.num_vars
        size = live()
        limit = max(int(size * max_growth), size + 2)
        pos = self._var_to_level[v]
        best_size, best_pos = size, pos
        swaps = 0
        while pos < n - 1:  # explore downward
            swap(pos)
            pos += 1
            swaps += 1
            size = live()
            if size < best_size:
                best_size, best_pos = size, pos
            if size > limit:
                break
        while pos > 0:  # explore upward, through the start position
            swap(pos - 1)
            pos -= 1
            swaps += 1
            size = live()
            if size < best_size:
                best_size, best_pos = size, pos
            if size > limit:
                break
        while pos < best_pos:  # park at the best position seen
            swap(pos)
            pos += 1
            swaps += 1
        while pos > best_pos:
            swap(pos - 1)
            pos -= 1
            swaps += 1
        return swaps

    def _sift_pair(
        self,
        a: int,
        b: int,
        max_growth: float,
        swap: Callable[[int], None],
        live: Callable[[], int],
    ) -> int:
        """Sift two correlated variables as one rigid block.

        The farther member is first *glued* level by level until the pair
        is adjacent, then the two-level block moves through the order as a
        unit — each block step is two adjacent swaps (the outer variable
        crosses the neighbour, then the inner one follows), which keeps
        the members' relative order — and parks where the live table was
        smallest."""
        vtl = self._var_to_level
        if vtl[a] > vtl[b]:
            a, b = b, a
        swaps = 0
        while vtl[b] > vtl[a] + 1:  # glue: walk b up until adjacent to a
            swap(vtl[b] - 1)
            swaps += 1
        n = self.num_vars
        size = live()
        limit = max(int(size * max_growth), size + 2)
        pos = vtl[a]  # block occupies levels (pos, pos + 1)
        best_size, best_pos = size, pos
        while pos < n - 2:  # block downward
            swap(pos + 1)
            swap(pos)
            pos += 1
            swaps += 2
            size = live()
            if size < best_size:
                best_size, best_pos = size, pos
            if size > limit:
                break
        while pos > 0:  # block upward, through the glue position
            swap(pos - 1)
            swap(pos)
            pos -= 1
            swaps += 2
            size = live()
            if size < best_size:
                best_size, best_pos = size, pos
            if size > limit:
                break
        while pos < best_pos:  # park
            swap(pos + 1)
            swap(pos)
            pos += 1
            swaps += 2
        while pos > best_pos:
            swap(pos - 1)
            swap(pos)
            pos -= 1
            swaps += 2
        return swaps

    # ------------------------------------------------------------------
    # convenience wrappers
    # ------------------------------------------------------------------
    def function(self, ref: int) -> "BDDFunction":
        """Wrap a ref in a :class:`BDDFunction` for operator syntax."""
        return BDDFunction(self, ref)

    def false(self) -> "BDDFunction":
        """The constant-false function, wrapped."""
        return BDDFunction(self, self.FALSE)

    def true(self) -> "BDDFunction":
        """The constant-true function, wrapped."""
        return BDDFunction(self, self.TRUE)

    def variable(self, index: int) -> "BDDFunction":
        """The single-variable function, wrapped."""
        return BDDFunction(self, self.var(index))

    def clear_caches(self) -> None:
        """Drop the operation caches (the unique table is kept: refs stay
        valid).

        Cached ``ite``/``exists`` results keep their operand and result
        nodes reachable only *from the cache* — after a collection
        rewrites the caches those entries are dropped with their nodes,
        so nothing is stranded; calling ``clear_caches()`` first simply
        releases every cache-held node for the next
        :meth:`collect_garbage` pass.
        """
        self._ite_cache.clear()
        self._exists_cache.clear()
        self._expand_cache.clear()

    def cache_stats(self) -> Dict[str, float]:
        """Engine counters: node/table sizes, cache hit rates, GC and
        reorder activity.

        ``nodes`` is the physical array length (may include garbage
        between collections); ``live_nodes`` is a mark from the current
        roots (pins + function handles; cache entries are *not* roots —
        a number lower than ``nodes`` is reclaimable).  The mark is
        memoised per (table, root-set) generation so repeated stats
        calls are O(1); a handle released between generations may be
        counted until the next table or root change.
        """
        ite_rate = self._ite_cache_hits / self._ite_calls if self._ite_calls else 0.0
        exists_rate = (
            self._exists_cache_hits / self._exists_calls if self._exists_calls else 0.0
        )
        return {
            "nodes": len(self._var),
            "live_nodes": self._live_node_count(),
            "unique_entries": len(self._unique),
            "pinned_refs": len(self._pins),
            "tracked_functions": len(self._functions),
            "gc_threshold": self.gc_threshold,
            "gc_runs": self._gc_runs,
            "gc_reclaimed_nodes": self._gc_reclaimed,
            "reorder_count": self._reorder_count,
            "reorder_swaps": self._reorder_swaps,
            "ite_calls": self._ite_calls,
            "ite_cache_hits": self._ite_cache_hits,
            "ite_hit_rate": ite_rate,
            "ite_cache_entries": len(self._ite_cache),
            "exists_calls": self._exists_calls,
            "exists_cache_hits": self._exists_cache_hits,
            "exists_hit_rate": exists_rate,
            "exists_cache_entries": len(self._exists_cache),
            "expand_calls": self._expand_calls,
            "expand_cache_hits": self._expand_cache_hits,
            "expand_cache_entries": len(self._expand_cache),
        }

    def _live_node_count(self) -> int:
        cached = self._live_count_cache
        if cached is not None and cached[:2] == (self._np_version, self._roots_version):
            return cached[2]
        live = {0}
        stack = [ref >> 1 for ref in self._pins]
        stack.extend(fn.ref >> 1 for fn in tuple(self._functions))
        while stack:
            index = stack.pop()
            if index in live:
                continue
            live.add(index)
            stack.append(self._low[index] >> 1)
            stack.append(self._high[index] >> 1)
        self._live_count_cache = (self._np_version, self._roots_version, len(live))
        return len(live)

    def reset_cache_stats(self) -> None:
        """Zero the call/hit counters (cache contents are untouched)."""
        self._ite_calls = self._ite_cache_hits = 0
        self._exists_calls = self._exists_cache_hits = 0


class _VecReorderState:
    """Numpy mirror of the node table powering the vectorized swap kernel.

    The Python swap loop spends its time in per-node dict/set traffic:
    unique-table deletes and inserts, per-variable set membership, and a
    recursive reference-count cascade.  This state drops all of that for
    the duration of a sift.  The node table is mirrored into four int64
    columns (``var``, ``low``, ``high``, ``rc``); a node is *live* iff
    ``rc > 0``, so there is no unique table to maintain; uniqueness is
    restored per swap by sorting candidate ``(low, high)`` keys against
    the survivors' keys.  Candidate rows come from *level-partitioned
    index columns* (``_rows_of[v]``, one int64 index array per
    variable), so a swap's cost scales with its two level populations,
    not the table size.  The columns are maintained lazily: death marks
    nothing (a dead row is filtered by its ``rc == 0`` the next time its
    variable reaches the upper level of a swap), and rows re-expressed
    at the lower variable are appended to that variable's column.

    One :meth:`swap` performs the same re-expression as
    ``BDDManager._swap_levels``, as whole-column batches:

    1. gather the live upper-level nodes whose cofactors touch the lower
       variable (the *interacting* rows);
    2. compute all four grandchild cofactors with ``np.where`` (applying
       the complement-edge flip on the low side);
    3. canonicalize both new-child columns in one batched ``_mk``:
       collapse ``low == high``, normalize complemented highs, then
       dedup against surviving upper-level nodes and within the batch,
       bulk-appending only the genuinely new nodes;
    4. count every new parent edge, then release the old cofactor edges
       with a batched death cascade.

    All increments land before any decrement, which is equivalent to the
    scalar kernel's interleaving: a swap's deaths happen at the lower
    level and below, so they can never free a row the batch is about to
    reuse, and a node revived by the batch was by definition still
    referenced.  Both kernels therefore see the same live count after
    every swap — and hence make identical sift decisions.

    Physical node indices may diverge from the Python kernel (batch
    append order differs from discovery order), but interacting rows are
    rewritten *in place*, so parent edges and external roots stay valid;
    the closing :meth:`BDDManager.collect_garbage` compacts junk rows
    and rebuilds the unique table either way.
    """

    __slots__ = ("mgr", "var", "low", "high", "rc", "n", "live", "_rows_of")

    def __init__(self, mgr: "BDDManager", roots: Sequence[int]):
        self.mgr = mgr
        n = len(mgr._var)
        cap = max(2 * n, 256)
        self.var = np.zeros(cap, dtype=np.int64)
        self.low = np.zeros(cap, dtype=np.int64)
        self.high = np.zeros(cap, dtype=np.int64)
        self.var[:n] = mgr._var
        self.low[:n] = mgr._low
        self.high[:n] = mgr._high
        rc = np.zeros(cap, dtype=np.int64)
        if n > 1:
            children = np.concatenate([self.low[1:n], self.high[1:n]]) >> 1
            np.add.at(rc, children, 1)
        for ref, count in mgr._pins.items():
            rc[ref >> 1] += count
        for fn in tuple(mgr._functions):
            rc[fn.ref >> 1] += 1
        for ref in roots:
            rc[ref >> 1] += 1
        rc[0] += 1  # the terminal is immortal
        self.rc = rc
        self.n = n
        self.live = n  # the opening compaction made every row live
        # Level-partitioned index columns: row indices per variable
        # (internal rows only; may go stale with dead rows, see swap).
        internal = self.var[1:n]
        order = np.argsort(internal, kind="stable") + 1
        bounds = np.searchsorted(internal[order - 1], np.arange(mgr.num_vars + 1))
        self._rows_of = [
            order[bounds[v] : bounds[v + 1]] for v in range(mgr.num_vars)
        ]

    def live_count(self) -> int:
        return self.live

    def counts(self) -> List[int]:
        """Live internal nodes per variable (sift priority populations)."""
        return [
            int((self.rc[rows] > 0).sum()) for rows in self._rows_of
        ]

    def _grow(self, needed: int) -> None:
        cap = len(self.var)
        if needed <= cap:
            return
        cap = max(2 * cap, needed)
        for name in ("var", "low", "high", "rc"):
            old = getattr(self, name)
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self.n] = old[: self.n]
            setattr(self, name, grown)

    def swap(self, level: int) -> None:
        """Swap the variables at ``level`` and ``level + 1`` — the
        batched twin of :meth:`BDDManager._swap_levels`."""
        mgr = self.mgr
        ltv, vtl = mgr._level_to_var, mgr._var_to_level
        va, vb = ltv[level], ltv[level + 1]
        var, low, high = self.var, self.low, self.high
        stale = self._rows_of[va]
        va_rows = stale[self.rc[stale] > 0]  # drop rows that died since
        self._rows_of[va] = va_rows
        if va_rows.size:
            f0 = low[va_rows]
            f1 = high[va_rows]
            inter = ((f0 > 1) & (var[f0 >> 1] == vb)) | (
                (f1 > 1) & (var[f1 >> 1] == vb)
            )
        else:
            inter = np.zeros(0, dtype=bool)
        rows = va_rows[inter] if va_rows.size else va_rows
        if rows.size:
            f0 = f0[inter]
            f1 = f1[inter]
            j0 = f0 >> 1
            j1 = f1 >> 1
            at0 = (f0 > 1) & (var[j0] == vb)
            at1 = (f1 > 1) & (var[j1] == vb)
            # Grandchildren; the low-side flip pushes a complemented low
            # edge down onto the cofactors (the high side is regular).
            flip = np.where(at0, (f0 & 1) ^ 1, 0)
            f00 = np.where(at0, low[j0] ^ flip, f0)
            f01 = np.where(at0, high[j0] ^ flip, f0)
            f10 = np.where(at1, low[j1], f1)
            f11 = np.where(at1, high[j1], f1)
            # One batched _mk over both new-child columns: the new lows
            # are mk(va, f00, f10), the new highs mk(va, f01, f11).
            survivors = va_rows[~inter]
            before = self.n
            refs = self._mk_batch(
                va,
                np.concatenate([f00, f01]),
                np.concatenate([f10, f11]),
                survivors,
            )
            var, low, high, rc = self.var, self.low, self.high, self.rc
            # Every result ref is one new parent edge (new and reused
            # children alike — the scalar kernel's _rc_inc per edge).
            np.add.at(rc, refs >> 1, 1)
            # Re-express the interacting rows in place: same physical
            # index, so parent edges and external roots stay valid.
            m = rows.size
            var[rows] = vb
            low[rows] = refs[:m]
            high[rows] = refs[m:]
            self._rows_of[va] = np.concatenate(
                [survivors, np.arange(before, self.n)]
            )
            self._rows_of[vb] = np.concatenate([self._rows_of[vb], rows])
            # Release the old cofactor edges, cascading deaths.
            self._dec_batch(np.concatenate([f0, f1]))
        ltv[level], ltv[level + 1] = vb, va
        vtl[va], vtl[vb] = level + 1, level
        mgr._np_version += 1

    def _mk_batch(
        self,
        v: int,
        lows: np.ndarray,
        highs: np.ndarray,
        survivors: np.ndarray,
    ) -> np.ndarray:
        """Vectorized ``_mk`` over a column of ``(low, high)`` pairs at
        variable ``v``: canonicalize (collapse + complement-edge normal
        form), dedup against the surviving rows already at ``v`` and
        within the batch, bulk-append the genuinely new nodes, and count
        the new nodes' child edges.  Returns the result ref column."""
        collapse = lows == highs
        flip = np.where(collapse, 0, (highs & 1) ^ 1)
        kl = lows ^ flip
        kh = highs ^ flip
        # Packed canonical key; safe while node count < 2**31.
        key = (kl << 32) | kh
        refs = np.empty(key.size, dtype=np.int64)
        refs[collapse] = lows[collapse]
        matched = np.zeros(key.size, dtype=bool)
        if survivors.size:
            sk = (self.low[survivors] << 32) | self.high[survivors]
            order = np.argsort(sk, kind="stable")
            sk_sorted = sk[order]
            pos = np.minimum(np.searchsorted(sk_sorted, key), sk.size - 1)
            matched = (sk_sorted[pos] == key) & ~collapse
            refs[matched] = (survivors[order[pos[matched]]] << 1) | 1
        fresh = ~(collapse | matched)
        if fresh.any():
            uniq, first, inverse = np.unique(
                key[fresh], return_index=True, return_inverse=True
            )
            k = uniq.size
            self._grow(self.n + k)
            var, low, high, rc = self.var, self.low, self.high, self.rc
            base = self.n
            fresh_rows = np.flatnonzero(fresh)
            src = fresh_rows[first]  # first occurrence of each unique key
            var[base : base + k] = v
            low[base : base + k] = kl[src]
            high[base : base + k] = kh[src]
            np.add.at(rc, kl[src] >> 1, 1)
            np.add.at(rc, kh[src] >> 1, 1)
            self.n = base + k
            self.live += k
            refs[fresh_rows] = ((base + inverse) << 1) | 1
        return refs ^ flip

    def _dec_batch(self, refs: np.ndarray) -> None:
        """Release one parent edge per ref, cascading: rows whose count
        hits zero die and release their own child edges, wave by wave."""
        rc, low, high = self.rc, self.low, self.high
        targets = refs >> 1
        while targets.size:
            np.add.at(rc, targets, -1)
            dead = np.unique(targets[(rc[targets] == 0) & (targets != 0)])
            if not dead.size:
                return
            self.live -= dead.size
            targets = np.concatenate([low[dead], high[dead]]) >> 1

    def finalize(self) -> None:
        """Write the mirrors back to the manager's node lists.  Dead rows
        go back as junk — the closing compaction sweeps them and rebuilds
        the unique table and caches from the surviving rows."""
        mgr = self.mgr
        n = self.n
        mgr._var = self.var[:n].tolist()
        mgr._low = self.low[:n].tolist()
        mgr._high = self.high[:n].tolist()
        mgr._np_version += 1


class BDDFunction:
    """A boolean function bound to its manager, with operator overloading.

    Thin value-type wrapper: equality is canonical-ref equality, so two
    wrappers compare equal iff they denote the same boolean function.
    Handles are tracked (weakly) as GC roots: a function you hold keeps
    its nodes alive across :meth:`BDDManager.collect_garbage` and
    :meth:`BDDManager.reorder`, and its ``ref`` is rewritten in place
    when the table compacts — which also means its hash can change, so
    do not key long-lived dicts or sets by the wrapper itself.
    """

    __slots__ = ("manager", "ref", "__weakref__")

    def __init__(self, manager: BDDManager, ref: int):
        self.manager = manager
        self.ref = ref
        manager._functions.add(self)
        manager._roots_version += 1

    def _coerce(self, other: "BDDFunction") -> int:
        if not isinstance(other, BDDFunction):
            raise TypeError(f"expected BDDFunction, got {type(other).__name__}")
        if other.manager is not self.manager:
            raise ValueError("cannot combine functions from different managers")
        return other.ref

    def __and__(self, other: "BDDFunction") -> "BDDFunction":
        return BDDFunction(self.manager, self.manager.apply_and(self.ref, self._coerce(other)))

    def __or__(self, other: "BDDFunction") -> "BDDFunction":
        return BDDFunction(self.manager, self.manager.apply_or(self.ref, self._coerce(other)))

    def __xor__(self, other: "BDDFunction") -> "BDDFunction":
        return BDDFunction(self.manager, self.manager.apply_xor(self.ref, self._coerce(other)))

    def __invert__(self) -> "BDDFunction":
        return BDDFunction(self.manager, self.manager.apply_not(self.ref))

    def implies(self, other: "BDDFunction") -> "BDDFunction":
        """The function ``self -> other``."""
        return BDDFunction(self.manager, self.manager.apply_implies(self.ref, self._coerce(other)))

    def iff(self, other: "BDDFunction") -> "BDDFunction":
        """The function ``self <-> other``."""
        return BDDFunction(self.manager, self.manager.apply_iff(self.ref, self._coerce(other)))

    def exists(self, index: int) -> "BDDFunction":
        """Existential quantification over variable ``index``."""
        return BDDFunction(self.manager, self.manager.exists(self.ref, index))

    def restrict(self, index: int, value: bool) -> "BDDFunction":
        """Cofactor with variable ``index`` fixed to ``value``."""
        return BDDFunction(self.manager, self.manager.restrict(self.ref, index, value))

    def contains(self, pattern: Sequence[int]) -> bool:
        """Membership query for one bit-vector."""
        return self.manager.contains(self.ref, pattern)

    def is_false(self) -> bool:
        """True iff this is the constant-false function."""
        return self.ref == BDDManager.FALSE

    def is_true(self) -> bool:
        """True iff this is the constant-true function."""
        return self.ref == BDDManager.TRUE

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BDDFunction)
            and other.manager is self.manager
            and other.ref == self.ref
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.ref))

    def __repr__(self) -> str:
        return f"BDDFunction(ref={self.ref})"
