#!/usr/bin/env python
"""Stop-sign monitoring on the traffic-sign task (paper §III, network 2).

Reproduces the paper's GTSRB protocol at example scale:

* monitor only the stop-sign class (c = 14), the safety-critical decision;
* monitor only 25% of the 84 neurons of the fc(84) ReLU layer, selected by
  gradient-based sensitivity analysis (here: output-weight magnitude, the
  closed form for a penultimate layer);
* sweep γ and report the two Table II columns.

Run:  python examples/gtsrb_stop_sign.py
"""

import numpy as np

from repro.analysis import percent, render_table2
from repro.datasets import STOP_SIGN_CLASS, generate_gtsrb
from repro.datasets.gtsrb import GtsrbConfig
from repro.models import build_model
from repro.monitor import (
    NeuronActivationMonitor,
    evaluate_monitor,
    select_top_neurons,
    weight_sensitivity,
)
from repro.nn import Adam, DataLoader, Trainer

# Softer nuisances keep this example fast while preserving the regime.
EXAMPLE_CONFIG = GtsrbConfig(
    brightness_low=0.6, occlusion_prob=0.1, blur_sigma_max=0.6, noise_std=0.04,
    scale_low=0.75,
)


def main() -> None:
    print("== training the traffic-sign classifier (network 2, reduced) ==")
    train_ds = generate_gtsrb(1290, seed=0, config=EXAMPLE_CONFIG)  # 30/class
    val_ds = generate_gtsrb(860, seed=10_000, config=EXAMPLE_CONFIG)
    spec = build_model("gtsrb", seed=0)
    trainer = Trainer(spec.model, Adam(spec.model.parameters(), lr=2e-3))
    trainer.fit(
        DataLoader(train_ds, batch_size=64, shuffle=True, seed=0),
        epochs=6,
        verbose=True,
    )
    val_accuracy = trainer.evaluate(val_ds)
    print(f"validation accuracy: {percent(val_accuracy)}")

    print("\n== gradient-based neuron selection (25% of fc(84)) ==")
    scores = weight_sensitivity(spec.output_layer, STOP_SIGN_CLASS)
    monitored_neurons = select_top_neurons(scores, 0.25)
    print(f"monitoring {len(monitored_neurons)} of {spec.monitored_width} neurons")
    print(f"selected neuron indices: {monitored_neurons.tolist()}")

    print("\n== building the stop-sign monitor and sweeping gamma ==")
    monitor = NeuronActivationMonitor.build(
        spec.model,
        spec.monitored_module,
        train_ds,
        gamma=0,
        classes=[STOP_SIGN_CLASS],
        monitored_neurons=monitored_neurons,
    )
    sweep = []
    for gamma in range(4):
        monitor.set_gamma(gamma)
        sweep.append(
            evaluate_monitor(monitor, spec.model, spec.monitored_module, val_ds)
        )
    print(render_table2(2, 1.0 - val_accuracy, sweep))

    # Narrate the coarsest gamma that still produces warnings.
    warning_rows = [row for row in sweep if row.out_of_pattern > 0]
    chosen = warning_rows[-1] if warning_rows else sweep[0]
    print(
        f"\nAt gamma={chosen.gamma} the monitor is silent "
        f"{percent(chosen.silence_rate)} of the time on stop-sign decisions; "
        f"when it does warn, {percent(chosen.misclassified_within_oop)} of "
        f"warnings coincide with actual misclassifications."
    )


if __name__ == "__main__":
    main()
