#!/usr/bin/env python
"""BDD playground: the paper's §II worked example, step by step.

Shows how comfort zones live inside binary decision diagrams: the visited
set Z0 = {001}, its single-step Hamming enlargement via existential
quantification, membership queries, model counting, and a DOT dump you can
paste into Graphviz.

Run:  python examples/bdd_playground.py
"""

from repro.bdd import BDDManager, enumerate_models, node_count, sat_count, to_dot


def main() -> None:
    mgr = BDDManager(3, var_names=["n1", "n2", "n3"])

    print("== the paper's example: Z0 = {001} ==")
    z0 = mgr.from_pattern([0, 0, 1])
    print(f"patterns in Z0: {sorted(enumerate_models(mgr, z0))}")

    print("\n== exists(j, Z0) for each variable j ==")
    for j in range(3):
        quantified = mgr.exists(z0, j)
        models = sorted(enumerate_models(mgr, quantified))
        print(f"  exists({mgr.var_names[j]}, Z0) = {models}")

    print("\n== union = Z1, the gamma=1 comfort zone ==")
    z1 = mgr.hamming_expand(z0)
    print(f"patterns in Z1: {sorted(enumerate_models(mgr, z1))}")
    print(f"|Z1| = {sat_count(mgr, z1)} patterns in {node_count(mgr, z1)} BDD nodes")

    print("\n== membership queries (linear in #variables) ==")
    for probe in ([0, 0, 1], [1, 0, 1], [1, 1, 0]):
        verdict = "in zone" if mgr.contains(z1, probe) else "OUT OF PATTERN"
        print(f"  {probe} -> {verdict}")

    print("\n== growing gamma saturates the space (Fig. 2's alpha-3) ==")
    zone = z0
    for gamma in range(4):
        print(
            f"  gamma={gamma}: {sat_count(mgr, zone)}/8 patterns, "
            f"{node_count(mgr, zone)} nodes"
        )
        zone = mgr.hamming_expand(zone)

    print("\n== DOT export of Z1 (render with `dot -Tpng`) ==")
    print(to_dot(mgr, z1, name="Z1"))


if __name__ == "__main__":
    main()
