#!/usr/bin/env python
"""Front-car selection case study (paper §III "Case Study", Fig. 3).

A highway-pilot vision subsystem selects which detected vehicle is the front
car (or "]" = none).  The neural selector's decisions feed a safety-critical
control unit, so each one is supplemented with an activation-pattern verdict;
the stream of verdicts drives a distribution-shift alarm for the development
team (paper §I).

Run:  python examples/frontcar_monitoring.py
"""

import numpy as np

from repro.analysis import percent
from repro.datasets import generate_frontcar
from repro.datasets.frontcar import FrontCarConfig, NO_FRONT_CAR, shifted_config
from repro.models import build_model
from repro.monitor import (
    DistributionShiftDetector,
    GammaCalibrator,
    MonitoredClassifier,
    NeuronActivationMonitor,
)
from repro.nn import Adam, DataLoader, Trainer


def class_name(index: int, config: FrontCarConfig) -> str:
    return NO_FRONT_CAR if index == config.max_vehicles else f"vehicle#{index}"


def main() -> None:
    config = FrontCarConfig()

    print("== training the front-car selector ==")
    train_ds = generate_frontcar(6000, seed=0)
    val_ds = generate_frontcar(2000, seed=10_000)
    spec = build_model("frontcar", seed=0)
    trainer = Trainer(spec.model, Adam(spec.model.parameters(), lr=2e-3))
    trainer.fit(
        DataLoader(train_ds, batch_size=128, shuffle=True, seed=0),
        epochs=60,
    )
    print(f"train accuracy: {percent(trainer.evaluate(train_ds))}")
    print(f"val accuracy:   {percent(trainer.evaluate(val_ds))}")

    print("\n== building and calibrating the monitor ==")
    monitor = NeuronActivationMonitor.build(
        spec.model, spec.monitored_module, train_ds, gamma=0
    )
    result = GammaCalibrator(max_gamma=4, max_out_of_pattern_rate=0.08).calibrate(
        monitor, spec.model, spec.monitored_module, val_ds
    )
    baseline = result.chosen.out_of_pattern_rate
    print(f"chosen gamma = {result.chosen_gamma}, baseline warning rate "
          f"{percent(baseline)}")

    guarded = MonitoredClassifier(spec.model, spec.monitored_module, monitor)

    print("\n== a few monitored decisions ==")
    scenes = generate_frontcar(5, seed=77)
    for features, label, verdict in zip(
        scenes.inputs, scenes.labels, guarded.classify(scenes.inputs)
    ):
        flag = "  [WARNING: unseen pattern]" if verdict.warning else ""
        print(
            f"  truth={class_name(int(label), config):<10} "
            f"predicted={class_name(verdict.predicted_class, config):<10} "
            f"confidence={verdict.confidence:.2f}{flag}"
        )

    print("\n== distribution-shift detection over an operation stream ==")
    detector = DistributionShiftDetector(baseline_rate=baseline, window=200)
    # Phase 1: nominal traffic. Phase 2: the scene distribution drifts
    # (sharper curves, noisier sensors) — the monitor's warning stream
    # should trip the alarm.
    nominal = generate_frontcar(600, seed=5)
    drifted = generate_frontcar(600, seed=6, config=shifted_config(3.0))
    alarm_at = None
    stream_position = 0
    for dataset, phase in ((nominal, "nominal"), (drifted, "drifted")):
        verdicts = guarded.classify(dataset.inputs)
        for verdict in verdicts:
            state = detector.update(verdict.warning)
            stream_position += 1
            if state.alarm and alarm_at is None:
                alarm_at = stream_position
        print(
            f"  after {phase} phase: windowed warning rate "
            f"{percent(state.window_rate)}"
        )
    if alarm_at is None:
        print("  no alarm raised")
    else:
        drift_start = len(nominal)
        print(
            f"  ALARM raised at decision #{alarm_at} "
            f"(drift began at #{drift_start + 1})"
        )


if __name__ == "__main__":
    main()
