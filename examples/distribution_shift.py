#!/usr/bin/env python
"""Distribution-shift dashboard: out-of-pattern rate vs corruption severity.

The paper (§I) argues that a rising rate of unseen activation patterns tells
the development team the deployed network faces data it was not trained on.
This example trains a digit classifier, fixes the calibrated monitor, then
sweeps corruption types and severities, printing the monitor's warning rate
next to the (hidden at runtime!) true misclassification rate — the two
should climb together.

Run:  python examples/distribution_shift.py
"""

from repro.analysis import format_table, percent
from repro.datasets import CORRUPTIONS, corrupt, generate_mnist
from repro.models import build_model
from repro.monitor import (
    GammaCalibrator,
    NeuronActivationMonitor,
    evaluate_patterns,
    extract_patterns,
)
from repro.nn import Adam, DataLoader, Trainer


def main() -> None:
    print("== training ==")
    train_ds = generate_mnist(2000, seed=0)
    val_ds = generate_mnist(800, seed=10_000)
    spec = build_model("mnist", seed=0)
    trainer = Trainer(spec.model, Adam(spec.model.parameters(), lr=1e-3))
    trainer.fit(
        DataLoader(train_ds, batch_size=64, shuffle=True, seed=0), epochs=4
    )
    print(f"val accuracy: {percent(trainer.evaluate(val_ds))}")

    monitor = NeuronActivationMonitor.build(
        spec.model, spec.monitored_module, train_ds, gamma=0
    )
    result = GammaCalibrator(max_gamma=3, max_out_of_pattern_rate=0.10).calibrate(
        monitor, spec.model, spec.monitored_module, val_ds
    )
    print(f"calibrated gamma = {result.chosen_gamma}, baseline warning rate "
          f"{percent(result.chosen.out_of_pattern_rate)}")

    print("\n== warning rate under deployment-time corruptions ==")
    rows = []
    for kind in sorted(CORRUPTIONS):
        for severity in (1.0, 2.0, 4.0):
            shifted = corrupt(val_ds.inputs, kind, severity=severity, seed=0)
            patterns, logits = extract_patterns(
                spec.model, spec.monitored_module, shifted
            )
            ev = evaluate_patterns(
                monitor, patterns, logits.argmax(axis=1), val_ds.labels
            )
            rows.append(
                [
                    kind,
                    f"{severity:.0f}",
                    percent(ev.out_of_pattern_rate),
                    percent(ev.misclassification_rate),
                ]
            )
    print(
        format_table(
            ["corruption", "severity", "warning rate", "true miscls rate"], rows
        )
    )
    print(
        "\nThe monitor sees no labels at runtime, yet its warning rate tracks"
        "\nthe (hidden) misclassification rate as conditions degrade."
    )


if __name__ == "__main__":
    main()
