#!/usr/bin/env python
"""Quickstart: the complete workflow of Figure 1 on a small digit task.

(a) Train a classifier, then create the monitor by feeding the training data
    through the network once and recording activation patterns in BDDs.
(b) In deployment, every classification decision is supplemented by a
    membership query; unseen patterns raise a "problematic decision" warning.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import percent
from repro.datasets import corrupt, generate_mnist
from repro.models import build_model
from repro.monitor import (
    GammaCalibrator,
    MonitoredClassifier,
    NeuronActivationMonitor,
)
from repro.nn import Adam, DataLoader, Trainer


def main() -> None:
    # ------------------------------------------------------------------
    # Standard training process (paper Fig. 1-a, left).
    # ------------------------------------------------------------------
    print("== training a digit classifier (network 1, reduced data) ==")
    train_ds = generate_mnist(1500, seed=0)
    val_ds = generate_mnist(600, seed=10_000)
    spec = build_model("mnist", seed=0)
    trainer = Trainer(spec.model, Adam(spec.model.parameters(), lr=1e-3))
    trainer.fit(
        DataLoader(train_ds, batch_size=64, shuffle=True, seed=0),
        epochs=3,
        val_dataset=val_ds,
        verbose=True,
    )

    # ------------------------------------------------------------------
    # Create the monitor after training (paper Fig. 1-a, right).
    # ------------------------------------------------------------------
    print("\n== building the neuron activation pattern monitor ==")
    monitor = NeuronActivationMonitor.build(
        spec.model, spec.monitored_module, train_ds, gamma=0
    )
    print(monitor)

    # Choose the abstraction coarseness on validation data (paper SIII).
    calibrator = GammaCalibrator(max_gamma=3, max_out_of_pattern_rate=0.10)
    result = calibrator.calibrate(
        monitor, spec.model, spec.monitored_module, val_ds
    )
    print(f"calibrated gamma = {result.chosen_gamma}")
    for row in result.sweep:
        print(
            f"  gamma={row.gamma}: out-of-pattern rate "
            f"{percent(row.out_of_pattern_rate)}, misclassified within "
            f"out-of-pattern {percent(row.misclassified_within_oop)}"
        )

    # ------------------------------------------------------------------
    # Deployment (paper Fig. 1-b): decisions plus warnings.
    # ------------------------------------------------------------------
    print("\n== running the monitor in deployment ==")
    guarded = MonitoredClassifier(spec.model, spec.monitored_module, monitor)

    in_distribution = generate_mnist(200, seed=42).inputs
    rate_clean = guarded.warning_rate(in_distribution)
    print(f"warning rate on in-distribution data:   {percent(rate_clean)}")

    # A distribution shift: heavy occlusion, like a smudged camera.
    shifted = corrupt(in_distribution, "occlusion", severity=4.0, seed=1)
    rate_shift = guarded.warning_rate(shifted)
    print(f"warning rate under heavy occlusion:     {percent(rate_shift)}")

    verdict = guarded.classify_one(shifted[0])
    status = "PROBLEMATIC (unseen pattern)" if verdict.warning else "supported"
    print(
        f"\nsingle decision: class={verdict.predicted_class} "
        f"confidence={verdict.confidence:.2f} -> {status}"
    )

    # ------------------------------------------------------------------
    # Pluggable zone engines: the bitset backend answers the same queries
    # with vectorized XOR/popcount and must agree bit-for-bit.
    # ------------------------------------------------------------------
    print("\n== swapping the comfort-zone backend ==")
    fast = NeuronActivationMonitor.build(
        spec.model, spec.monitored_module, train_ds,
        gamma=result.chosen_gamma, backend="bitset",
    )
    guarded_fast = MonitoredClassifier(spec.model, spec.monitored_module, fast)
    rate_fast = guarded_fast.warning_rate(shifted)
    print(f"bitset backend warning rate (same data): {percent(rate_fast)}")
    assert abs(rate_fast - rate_shift) < 1e-12, "backends must agree"


if __name__ == "__main__":
    main()
