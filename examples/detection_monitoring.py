#!/usr/bin/env python
"""Grid-detection monitoring — the paper's §V YOLO extension, end to end.

A 64x64 scene is partitioned into a 2x2 grid; a shared convolutional trunk
feeds one classification head per cell (sign class or background).  One
activation monitor per cell checks each proposal against the trunk patterns
seen for that (cell, class) during training.

Run:  python examples/detection_monitoring.py
"""

import numpy as np

from repro.analysis import format_table, percent
from repro.datasets import GRID, MultiObjectConfig, generate_multiobject
from repro.models import build_model
from repro.monitor import DetectionMonitor
from repro.nn import Adam, CrossEntropyLoss, Tensor


def train_detector(spec, data, epochs=6, batch_size=32, lr=2e-3):
    optimizer = Adam(spec.model.parameters(), lr=lr)
    loss_fn = CrossEntropyLoss()
    flat_labels = data.cell_labels.reshape(len(data), -1)
    for epoch in range(epochs):
        total = 0.0
        order = np.random.default_rng(epoch).permutation(len(data))
        for start in range(0, len(data), batch_size):
            idx = order[start : start + batch_size]
            logits = spec.model(Tensor(data.inputs[idx]))
            n, k, c = logits.shape
            loss = loss_fn(logits.reshape(n * k, c), flat_labels[idx].reshape(-1))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            total += loss.item() * n
        print(f"  epoch {epoch}: loss={total / len(data):.4f}")


def main() -> None:
    config = MultiObjectConfig()
    print("== generating multi-object scenes ==")
    train_data = generate_multiobject(400, seed=0, config=config)
    val_data = generate_multiobject(150, seed=10_000, config=config)

    print("== training the grid detector ==")
    spec = build_model("grid_detector", seed=0, config=config)
    train_detector(spec, train_data)

    print("\n== building per-cell monitors (Algorithm 1 per grid cell) ==")
    monitor = DetectionMonitor.build(
        spec.model,
        spec.monitored_module,
        train_data.inputs,
        train_data.cell_labels,
        gamma=0,
    )

    rows = []
    for gamma in (0, 1, 2):
        monitor.set_gamma(gamma)
        metrics = monitor.evaluate(
            spec.model, spec.monitored_module, val_data.inputs, val_data.cell_labels
        )
        rows.append(
            [
                str(gamma),
                percent(metrics["out_of_pattern_rate"]),
                percent(metrics["misclassified_within_oop"]),
                percent(metrics["misclassification_rate"]),
            ]
        )
    print(format_table(
        ["gamma", "cell oop rate", "precision", "cell miscls rate"], rows
    ))

    print("\n== per-cell verdicts for one scene ==")
    monitor.set_gamma(1)
    scene_verdicts = monitor.check_scene(
        spec.model, spec.monitored_module, val_data.inputs[:1]
    )[0]
    truth = val_data.cell_labels[0].reshape(-1)
    for verdict in scene_verdicts:
        row, col = divmod(verdict.cell, GRID)
        flag = "  [WARNING]" if verdict.warning else ""
        print(
            f"  cell ({row},{col}): predicted class {verdict.predicted_class} "
            f"(truth {int(truth[verdict.cell])}){flag}"
        )


if __name__ == "__main__":
    main()
